"""Signature-sticky, depth-balanced, self-healing router over a worker pool.

The :class:`Router` is the front end of the multi-process serving tier:
it exposes the same ``submit(cascade, inputs, mode, *, tenant, priority,
deadline_s, ...) -> Future`` surface as
:class:`~repro.engine.serving.ServingEngine` (so
:func:`repro.harness.traffic.replay` drives it unchanged), and decides
*which* worker executes each request:

* **sticky by cascade signature** — the structural
  :func:`~repro.engine.plan.cascade_signature` hashes to a home worker,
  so every request for one cascade shape lands on the same process and
  its plan cache / batch-executor cache stay hot (requests for the same
  shape also micro-batch together there);
* **queue-depth balanced** — when the home worker's outstanding depth
  exceeds the lightest worker's by more than ``imbalance``, the request
  spills to the least-loaded live worker instead (stickiness is a
  throughput optimization, never a hot-spot sentence);
* **fault tolerant** — dead and circuit-breaker-parked workers are
  skipped; a send that discovers a dead worker fails over to the next
  candidate; a worker that dies *mid-request* has its in-flight requests
  transparently resubmitted to a live worker (bounded by ``max_retries``
  per request, surfacing :class:`RetriesExhaustedError` when the budget
  runs out); a background :class:`~repro.engine.supervisor.Supervisor`
  heartbeats the pool and warm-restarts crashed/hung slots;
* **deadline enforced client-side** — a request with ``deadline_s`` whose
  worker wedges mid-request fails with
  :class:`~repro.engine.serving.DeadlineExceededError` (after a grace
  margin) instead of hanging forever;
* **gracefully degraded** — when every slot is dead or parked, requests
  fall back to a lazily-created in-process serving engine (warm from the
  same plan store) instead of erroring, with a degraded-mode gauge.

Retried requests re-execute from scratch on another worker, so the
retry path assumes request idempotency — true for the pure-functional
cascades this stack serves, where a re-execution is bitwise identical.

Tenant / priority class / deadline pass through verbatim, so the SLA
scheduler (PR 7) enforces exactly the same policy per worker as it does
in process.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from ..obs.clock import monotonic_s
from ..obs.metrics import MetricsRegistry, Sample
from .plan import cascade_signature
from .pool import RequestSerializationError, WorkerError, WorkerPool
from .serving import DeadlineExceededError, priority_index
from .supervisor import Supervisor, SupervisorConfig

#: ``serving`` snapshot keys that aggregate by summation across workers.
_SUM_KEYS = (
    "submitted", "completed", "failed", "shed", "evicted", "cancelled",
    "deadline_misses", "queue_depth", "batches", "batched_requests",
    "ragged_batches", "useful_positions", "padded_positions",
)
#: ``serving`` snapshot keys that aggregate by maximum across workers.
_MAX_KEYS = ("peak_queue_depth", "max_batch_size")


class RetriesExhaustedError(WorkerError):
    """A request's workers kept dying and its retry budget ran out.

    ``__cause__`` carries the final :class:`WorkerError`.  Raised on the
    client future, never synchronously.
    """


class _ClientRequest:
    """Router-side state for one client request across retries."""

    __slots__ = ("future", "cascade", "inputs", "mode", "kwargs",
                 "signature", "retries_left", "retries_used",
                 "deadline_s", "deadline_at")

    def __init__(self, cascade, inputs, mode, kwargs, signature,
                 retries_left, deadline_s, deadline_at) -> None:
        from concurrent.futures import Future

        self.future: "Future" = Future()
        self.cascade = cascade
        self.inputs = inputs
        self.mode = mode
        self.kwargs = kwargs
        self.signature = signature
        self.retries_left = retries_left
        self.retries_used = 0
        self.deadline_s = deadline_s
        self.deadline_at = deadline_at  # absolute monotonic or None


class RouterStats:
    """Routing-decision counters (thread-safe, monotonic)."""

    def __init__(self, num_workers: int) -> None:
        self._lock = threading.Lock()
        self.routed = [0] * num_workers
        self.failover_by_worker = [0] * num_workers
        self.sticky = 0
        self.spilled = 0
        self.failover = 0
        self.retries = 0
        self.retries_exhausted = 0
        self.timeouts = 0
        self.degraded = 0

    def note(self, index: int, *, sticky: bool, failover: bool = False) -> None:
        with self._lock:
            self.routed[index] += 1
            if failover:
                self.failover += 1
            elif sticky:
                self.sticky += 1
            else:
                self.spilled += 1

    def note_failover_from(self, index: int) -> None:
        """A send to worker ``index`` failed and the request moved on."""
        with self._lock:
            self.failover_by_worker[index] += 1

    def note_retry(self) -> None:
        with self._lock:
            self.retries += 1

    def note_retries_exhausted(self) -> None:
        with self._lock:
            self.retries_exhausted += 1

    def note_timeout(self) -> None:
        with self._lock:
            self.timeouts += 1

    def note_degraded(self) -> None:
        with self._lock:
            self.degraded += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            routed = list(self.routed)
            failover_by_worker = list(self.failover_by_worker)
            sticky, spilled, failover = self.sticky, self.spilled, self.failover
            retries = self.retries
            retries_exhausted = self.retries_exhausted
            timeouts = self.timeouts
            degraded = self.degraded
        total = sum(routed)
        return {
            "routed": total,
            "sticky": sticky,
            "spilled": spilled,
            "failover": failover,
            "retries": retries,
            "retries_exhausted": retries_exhausted,
            "timeouts": timeouts,
            "degraded": degraded,
            "sticky_rate": sticky / total if total else 1.0,
            "by_worker": {f"w{i}": n for i, n in enumerate(routed)},
            "failover_by_worker": {
                f"w{i}": n for i, n in enumerate(failover_by_worker)
            },
        }


def pick_worker(
    signature: str,
    outstanding: Sequence[int],
    alive: Sequence[bool],
    imbalance: int,
) -> int:
    """Pure routing decision, exposed for direct testing.

    Returns the worker index for a request with the given cascade
    signature: the signature's home worker when it is alive and within
    ``imbalance`` of the lightest live worker's outstanding depth,
    otherwise the least-loaded live worker (ties to the lowest index).
    Raises :class:`WorkerError` when no worker is alive.
    """
    live = [i for i, ok in enumerate(alive) if ok]
    if not live:
        raise WorkerError("no live workers")
    home = int(signature[:8], 16) % len(alive)
    lightest = min(live, key=lambda i: (outstanding[i], i))
    if alive[home] and outstanding[home] <= outstanding[lightest] + imbalance:
        return home
    return lightest


class Router:
    """Load-balancing front end with the ``ServingEngine.submit`` surface.

    ``imbalance`` is the stickiness budget: how many more outstanding
    requests the home worker may carry than the lightest worker before a
    request spills.  0 is pure least-loaded; large values are pure
    sticky.

    ``max_retries`` is the default in-flight retry budget: how many times
    one request may be resubmitted after its worker died mid-execution
    (override per request with ``submit(..., max_retries=N)``).
    ``supervise=True`` (default) runs a background
    :class:`~repro.engine.supervisor.Supervisor` that restarts
    crashed/hung workers; ``degraded_fallback=True`` serves from an
    in-process engine when every slot is dead or parked.
    ``deadline_grace_s`` pads the client-side deadline watchdog so a
    request that completes slightly past its deadline still returns its
    result (counted worker-side as a deadline miss, exactly as before) —
    the watchdog only reaps futures whose worker truly wedged.
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        imbalance: int = 8,
        registry: Optional[MetricsRegistry] = None,
        max_retries: int = 2,
        supervise: bool = True,
        supervisor_config: Optional[SupervisorConfig] = None,
        degraded_fallback: bool = True,
        deadline_grace_s: float = 0.5,
    ) -> None:
        if imbalance < 0:
            raise ValueError("imbalance must be >= 0")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if deadline_grace_s < 0:
            raise ValueError("deadline_grace_s must be >= 0")
        self.pool = pool
        self.imbalance = imbalance
        self.max_retries = max_retries
        self.deadline_grace_s = deadline_grace_s
        self.degraded_fallback = degraded_fallback
        self.stats = RouterStats(pool.num_workers)
        self.registry = registry or MetricsRegistry()
        self.registry.register_collector(self._collect_samples)
        self.registry.register_collector(pool.collect_samples)
        self.supervisor: Optional[Supervisor] = None
        if supervise:
            self.supervisor = Supervisor(pool, supervisor_config)
            self.registry.register_collector(self.supervisor.collect_samples)
            self.supervisor.start()
        self._closing = False
        self._degraded_mode = False
        self._degraded_engine = None
        self._degraded_lock = threading.Lock()
        # deadline watchdog: lazily started, condition-timed
        self._watched: set = set()
        self._watch_cond = threading.Condition()
        self._watch_thread: Optional[threading.Thread] = None
        self._watch_stop = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "Router":
        self.pool.start()
        if self.supervisor is not None:
            self.supervisor.start()
        return self

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self._closing = True
        if self.supervisor is not None:
            self.supervisor.stop()
        with self._watch_cond:
            self._watch_stop = True
            self._watch_cond.notify_all()
        thread = self._watch_thread
        if thread is not None and thread.is_alive():
            thread.join(5.0)
        with self._degraded_lock:
            degraded, self._degraded_engine = self._degraded_engine, None
        if degraded is not None:
            degraded.close()
        self.pool.close()

    def drain(self, timeout: float = 120.0) -> bool:
        """Block until every worker's scheduler is empty (shared budget)."""
        drained = self.pool.drain(timeout)
        with self._degraded_lock:
            degraded = self._degraded_engine
        if degraded is not None:
            degraded.serving().drain()
        return drained

    # -- client API ---------------------------------------------------------
    def submit(self, cascade, inputs, mode: str = "auto", **kwargs):
        """Route one request; returns a router-owned Future.

        Keyword arguments (``tenant=``, ``priority=``, ``deadline_s=``,
        backend options, chunking parameters) pass through to the chosen
        worker's scheduler unchanged; ``max_retries=`` (router-level)
        overrides the in-flight retry budget for this request.  The
        returned future survives worker death: the request is resubmitted
        to a live worker until it completes or the budget is exhausted
        (:class:`RetriesExhaustedError`).  When every worker is dead or
        parked this falls back to the in-process degraded engine, or —
        with ``degraded_fallback=False`` — raises :class:`WorkerError`
        synchronously, like a closed serving runtime would.
        """
        # validate SLA attributes eagerly so a bad value raises here, as
        # ServingEngine.submit does, instead of inside the remote worker
        if "priority" in kwargs:
            priority_index(kwargs["priority"])
        deadline_s = kwargs.get("deadline_s")
        if deadline_s is not None and not float(deadline_s) > 0:
            raise ValueError("deadline_s must be > 0")
        retries = kwargs.pop("max_retries", self.max_retries)
        if retries < 0:
            raise ValueError("max_retries must be >= 0")
        deadline_at = None
        if deadline_s is not None:
            deadline_at = (
                monotonic_s() + float(deadline_s) + self.deadline_grace_s
            )
        record = _ClientRequest(
            cascade, inputs, mode, kwargs, cascade_signature(cascade),
            retries, deadline_s, deadline_at,
        )
        self._dispatch(record, first=True)
        if deadline_at is not None and not record.future.done():
            self._watch(record)
        return record.future

    def run(self, cascade, inputs, mode: str = "auto", **kwargs):
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(cascade, inputs, mode, **kwargs).result()

    # -- dispatch / recovery ------------------------------------------------
    def _dispatch(self, record: _ClientRequest, *, first: bool,
                  failover: bool = False) -> None:
        """Send ``record`` to a worker, failing over across candidates.

        Two passes over the slots: the first masks every worker already
        tried this dispatch, the second resets ``tried`` — a worker that
        failed a send moments ago may have been restarted meanwhile, and
        a transient failure must not condemn the whole tier while live
        workers exist (the pre-supervisor router never reset ``tried``
        and could raise with healthy workers available).
        """
        num = self.pool.num_workers
        for attempt in range(2):
            tried: List[int] = []
            while True:
                alive = list(self.pool.alive())
                if self.supervisor is not None:
                    for index, parked in enumerate(self.supervisor.parked()):
                        if parked:
                            alive[index] = False
                for index in tried:
                    alive[index] = False
                if not any(alive):
                    break
                outstanding = self.pool.outstanding()
                index = pick_worker(
                    record.signature, outstanding, alive, self.imbalance
                )
                sticky = index == int(record.signature[:8], 16) % num
                try:
                    worker_future = self.pool.submit_to(
                        index, record.cascade, record.inputs, record.mode,
                        **record.kwargs,
                    )
                except RequestSerializationError:
                    if first:
                        raise  # caller bug; the worker is fine
                    record.future.set_exception(  # pragma: no cover
                        RequestSerializationError("retry payload unpicklable")
                    )
                    return
                except WorkerError:
                    self.stats.note_failover_from(index)
                    tried.append(index)
                    failover = True
                    continue
                self.stats.note(index, sticky=sticky, failover=failover)
                if self._degraded_mode:
                    self._degraded_mode = False
                worker_future.add_done_callback(
                    lambda f, r=record: self._on_worker_done(r, f)
                )
                return
        self._degrade(record, first=first)

    def _on_worker_done(self, record: _ClientRequest, worker_future) -> None:
        """One execution attempt finished; resolve or retry the client."""
        if record.future.done():
            return  # deadline/cancellation already reaped it; drop late result
        error = worker_future.exception()
        if error is None:
            try:
                record.future.set_result(worker_future.result())
            except Exception:
                pass  # lost the race against the deadline watchdog
            return
        if isinstance(error, WorkerError) and not self._closing:
            # the worker died mid-request; the request itself never
            # failed — resubmit it while budget remains
            if record.retries_left > 0:
                record.retries_left -= 1
                record.retries_used += 1
                self.stats.note_retry()
                try:
                    self._dispatch(record, first=False, failover=True)
                except Exception as err:  # defensive: dispatch never raises
                    try:
                        record.future.set_exception(err)
                    except Exception:
                        pass
                return
            self.stats.note_retries_exhausted()
            exhausted = RetriesExhaustedError(
                f"request failed after {record.retries_used} retries: {error}"
            )
            exhausted.__cause__ = error
            error = exhausted
        try:
            record.future.set_exception(error)
        except Exception:
            pass  # lost the race against the deadline watchdog

    # -- degraded mode ------------------------------------------------------
    def _degrade(self, record: _ClientRequest, *, first: bool) -> None:
        """Every slot is dead or parked: serve in-process or give up."""
        if not self.degraded_fallback or self._closing:
            error: Exception = WorkerError("no live workers")
            if first:
                raise error
            if record.retries_used:
                self.stats.note_retries_exhausted()
                error = RetriesExhaustedError(
                    f"request failed after {record.retries_used} retries: "
                    "no live workers"
                )
            try:
                record.future.set_exception(error)
            except Exception:
                pass
            return
        try:
            engine = self._fallback_engine()
            inner = engine.serving().submit(
                record.cascade, record.inputs, record.mode, **record.kwargs
            )
        except BaseException as err:
            if first:
                raise
            try:
                record.future.set_exception(err)
            except Exception:
                pass
            return
        self._degraded_mode = True
        self.stats.note_degraded()

        def copy(inner_future, r=record):
            if r.future.done():
                return
            err = inner_future.exception()
            try:
                if err is None:
                    r.future.set_result(inner_future.result())
                else:
                    r.future.set_exception(err)
            except Exception:
                pass

        inner.add_done_callback(copy)

    def _fallback_engine(self):
        """Lazily build the in-process degraded engine (warm from store)."""
        with self._degraded_lock:
            if self._degraded_engine is None:
                from . import Engine
                from .store import PlanStore

                store = None
                if self.pool.store_root is not None:
                    store = PlanStore(self.pool.store_root,
                                      env=self.pool.store_env)
                engine = Engine(
                    serving_config=self.pool.serving_config, plan_store=store
                )
                if store is not None:
                    engine.warm_start()
                engine.serving()  # start the scheduler: submits are async
                self._degraded_engine = engine
            return self._degraded_engine

    @property
    def degraded(self) -> bool:
        """True while the last routed request fell back in-process."""
        return self._degraded_mode

    # -- deadline watchdog --------------------------------------------------
    def _watch(self, record: _ClientRequest) -> None:
        with self._watch_cond:
            if self._watch_stop:
                return
            self._watched.add(record)
            if self._watch_thread is None or not self._watch_thread.is_alive():
                self._watch_thread = threading.Thread(
                    target=self._watch_loop, name="repro-router-deadlines",
                    daemon=True,
                )
                self._watch_thread.start()
            self._watch_cond.notify()
        record.future.add_done_callback(lambda f: self._unwatch(record))

    def _unwatch(self, record: _ClientRequest) -> None:
        with self._watch_cond:
            self._watched.discard(record)

    def _watch_loop(self) -> None:
        while True:
            with self._watch_cond:
                if self._watch_stop:
                    return
                now = monotonic_s()
                expired = [r for r in self._watched if r.deadline_at <= now]
                for r in expired:
                    self._watched.discard(r)
                if not expired:
                    nxt = min(
                        (r.deadline_at for r in self._watched), default=None
                    )
                    self._watch_cond.wait(
                        None if nxt is None else max(1e-3, nxt - now)
                    )
                    continue
            # fail expired futures OUTSIDE the lock: set_exception runs
            # done-callbacks synchronously (including _unwatch)
            for r in expired:
                error = DeadlineExceededError(
                    f"deadline_s={r.deadline_s} expired "
                    f"(+{self.deadline_grace_s}s grace) with no result — "
                    "worker wedged or overloaded"
                )
                try:
                    r.future.set_exception(error)
                except Exception:
                    continue  # the result won the race after all
                self.stats.note_timeout()

    # -- health -------------------------------------------------------------
    def check_workers(self, *, restart: bool = True,
                      timeout: float = 5.0) -> List[bool]:
        """Ping every worker; optionally restart dead slots (warm).

        Returns post-check liveness.  Restarted workers warm-start from
        the shared plan store, so recovery costs no symbolic compiles.
        The background supervisor automates this sweep; the method stays
        for manual/synchronous health management.
        """
        health = self.pool.ping(timeout)
        if restart:
            for index, payload in enumerate(health):
                if payload is None:
                    self.pool.restart(index, drain=False)
        return self.pool.alive()

    # -- observability ------------------------------------------------------
    def _collect_samples(self):
        snap = self.stats.snapshot()
        yield Sample("router_requests_total", snap["routed"], kind="counter",
                     help="Requests routed")
        yield Sample("router_sticky_total", snap["sticky"], kind="counter",
                     help="Requests routed to their signature's home worker")
        yield Sample("router_spilled_total", snap["spilled"], kind="counter",
                     help="Requests spilled off a deep home worker")
        yield Sample("router_failover_total", snap["failover"], kind="counter",
                     help="Requests rerouted off a dead worker")
        yield Sample("router_retries_total", snap["retries"], kind="counter",
                     help="In-flight requests resubmitted after worker death")
        yield Sample("router_retries_exhausted_total",
                     snap["retries_exhausted"], kind="counter",
                     help="Requests failed with their retry budget spent")
        yield Sample("router_request_timeouts_total", snap["timeouts"],
                     kind="counter",
                     help="Futures reaped by the client-side deadline watchdog")
        yield Sample("router_degraded_requests_total", snap["degraded"],
                     kind="counter",
                     help="Requests served by the in-process fallback engine")
        yield Sample("router_degraded_mode", int(self._degraded_mode),
                     help="1 while requests fall back to the in-process engine")
        for name in self.pool.workers():
            yield Sample("router_routed_total", snap["by_worker"][name],
                         (("worker", name),), kind="counter",
                         help="Requests routed per worker")
            yield Sample("router_failover_from_total",
                         snap["failover_by_worker"][name],
                         (("worker", name),), kind="counter",
                         help="Failed sends that moved a request off this "
                              "worker")

    def render_prometheus(self) -> str:
        """Router + per-worker rollup in Prometheus exposition format.

        Worker series come from the pool's cached stats (refresh with
        ``pool.stats()`` or :meth:`describe` before scraping for live
        values) relabeled with ``worker=<name>``.
        """
        return self.registry.render_prometheus()

    def attach_to(self, engine) -> None:
        """Roll this tier's stats into an engine's describe()/scrape.

        The engine's :meth:`~repro.engine.EngineStats.describe` gains a
        trailing ``"workers"`` namespace (cached worker sections plus a
        ``"router"`` entry) and its Prometheus scrape gains the
        worker-labeled series — with zero change to the single-process
        sections, so existing consumers parse both shapes.
        """
        engine.attach_worker_rollup(self.worker_sections)
        engine.metrics.register_collector(self._collect_samples)
        engine.metrics.register_collector(self.pool.collect_samples)
        if self.supervisor is not None:
            engine.metrics.register_collector(self.supervisor.collect_samples)

    def worker_sections(self) -> Dict[str, object]:
        """Cached per-worker stat sections, namespaced by worker name."""
        sections: Dict[str, object] = {}
        for name, payload in self.pool.cached_stats().items():
            section = {k: v for k, v in payload.items() if k != "samples"}
            sections[name] = section
        if sections:
            sections["router"] = self.stats.snapshot()
            if self.supervisor is not None:
                sections["supervisor"] = self.supervisor.describe()
        return sections

    def describe(self) -> Dict[str, object]:
        """Aggregated tier stats in the ``EngineStats.describe`` shape.

        Top-level sections (``cache``, ``backend_executions``,
        ``serving``) sum the live per-worker numbers, so existing
        consumers read the tier exactly like a big single engine; the
        per-worker breakdown is namespaced under ``workers`` and routing
        decisions under ``router``.  Latency percentiles do not
        aggregate across processes and stay per worker.
        """
        workers = self.pool.stats()
        cache_total: Dict[str, float] = {}
        executions_total: Dict[str, int] = {}
        serving_total: Dict[str, float] = {}
        fusion_compiles = 0
        for payload in workers.values():
            if not payload.get("alive"):
                continue
            for key, value in payload.get("cache", {}).items():
                if isinstance(value, (int, float)) and key != "hit_rate":
                    cache_total[key] = cache_total.get(key, 0) + value
            for backend, count in payload.get("backend_executions", {}).items():
                executions_total[backend] = executions_total.get(backend, 0) + count
            serving = payload.get("serving", {})
            for key in _SUM_KEYS:
                if key in serving:
                    serving_total[key] = serving_total.get(key, 0) + serving[key]
            for key in _MAX_KEYS:
                if key in serving:
                    serving_total[key] = max(serving_total.get(key, 0), serving[key])
            fusion_compiles += int(payload.get("fusion_compiles", 0))
        requests = cache_total.get("hits", 0) + cache_total.get("misses", 0)
        if cache_total:
            cache_total["hit_rate"] = (
                cache_total.get("hits", 0) / requests if requests else 0.0
            )
        batches = serving_total.get("batches", 0)
        if serving_total:
            serving_total["mean_batch_size"] = (
                serving_total.get("batched_requests", 0) / batches if batches else 0.0
            )
            padded = serving_total.get("padded_positions", 0)
            serving_total["padding_efficiency"] = (
                serving_total.get("useful_positions", 0) / padded if padded else 1.0
            )
        info: Dict[str, object] = {
            "cache": cache_total,
            "backend_executions": executions_total,
            "serving": serving_total,
            "fusion_compiles": fusion_compiles,
            "workers": workers,
            "router": self.stats.snapshot(),
            "degraded_mode": self._degraded_mode,
        }
        if self.supervisor is not None:
            info["supervisor"] = self.supervisor.describe()
        return info
