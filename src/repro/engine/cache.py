"""Thread-safe LRU cache of :class:`FusionPlan` keyed by cascade signature.

The cache is the serving engine's amortization point: the first request
for a cascade shape compiles a plan (a miss), every later request
returns the same plan object (a hit) without touching the symbolic
layer.  Concurrent misses for the same signature are deduplicated with
per-signature in-flight events so each distinct shape is compiled
exactly once, no matter how many threads race on it.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.spec import Cascade
from ..obs import tracing
from .plan import FusionPlan, cascade_signature


@dataclass
class CacheStats:
    """Monotonic counters describing cache behavior."""

    hits: int = 0
    misses: int = 0
    compiles: int = 0
    evictions: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "compiles": self.compiles,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """LRU plan cache with hit/miss/eviction accounting.

    ``get_or_compile`` is the only entry point the engine uses.  Waiters
    on an in-flight compilation block until the winning thread publishes
    the plan, then take the hit path; a failed compilation wakes the
    waiters so one of them retries.
    """

    def __init__(self, maxsize: int = 256, store=None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        #: Optional :class:`~repro.engine.store.PlanStore`: the lookup
        #: order becomes memory LRU -> disk artifact -> symbolic compile,
        #: and every fresh compile persists its artifacts back to disk.
        self.store = store
        self.stats = CacheStats()
        self._plans: "OrderedDict[str, FusionPlan]" = OrderedDict()
        self._inflight: Dict[str, threading.Event] = {}
        self._lock = threading.Lock()
        # Live per-backend execution totals: every plan this cache ever
        # compiled mirrors its recorded executions here (via an attached
        # sink), so the totals are monotonic across eviction/clear and
        # keep counting for plans still referenced after eviction
        # (e.g. a long-lived stream session).
        self._execution_totals: "Counter[str]" = Counter()
        self._totals_lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, signature: str) -> bool:
        with self._lock:
            return signature in self._plans

    def signatures(self):
        """Cached signatures in LRU order (oldest first)."""
        with self._lock:
            return tuple(self._plans)

    def peek(self, signature: str) -> Optional[FusionPlan]:
        """Look up by signature without recency update or stats change."""
        with self._lock:
            return self._plans.get(signature)

    def plans(self) -> Tuple[FusionPlan, ...]:
        """Cached plan objects in LRU order (no recency/stats change)."""
        with self._lock:
            return tuple(self._plans.values())

    def execution_totals(self) -> Dict[str, int]:
        """Per-backend executions served by all plans ever compiled here.

        Monotonic like every other counter: eviction, :meth:`clear`, and
        executions recorded on already-evicted plans all keep counting.
        """
        with self._totals_lock:
            return dict(self._execution_totals)

    def _note_execution(self, backend_name: str) -> None:
        """Sink attached to every compiled plan (see ``get_or_compile``)."""
        with self._totals_lock:
            self._execution_totals[backend_name] += 1

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()

    def get_or_compile(
        self,
        cascade: Cascade,
        compile_fn: Optional[Callable[[Cascade, str], FusionPlan]] = None,
    ) -> FusionPlan:
        """Return the cached plan for ``cascade``'s shape, compiling at most once."""
        signature = cascade_signature(cascade)
        # "plan" is the compile-or-hit span of the request lifecycle: a
        # hit is near-instant, a miss carries the plan construction.
        with tracing.span("plan", "compile_or_hit", cascade=cascade.name) as plan_span:
            while True:
                with self._lock:
                    plan = self._plans.get(signature)
                    if plan is not None:
                        self._plans.move_to_end(signature)
                        self.stats.hits += 1
                        plan_span.set(hit=True)
                        return plan
                    event = self._inflight.get(signature)
                    if event is None:
                        self._inflight[signature] = threading.Event()
                        self.stats.misses += 1
                        break
                event.wait()

            plan_span.set(hit=False)
            try:
                plan = None
                if self.store is not None:
                    # Disk tier: a restored plan is already compiled, so
                    # the in-flight winner publishes it with zero
                    # symbolic work (fusion_compile_count unmoved).
                    plan = self.store.load_plan(signature, cascade)
                if plan is None:
                    if compile_fn is None:
                        plan = FusionPlan(cascade, signature=signature)
                    else:
                        plan = compile_fn(cascade, signature)
                    if self.store is not None:
                        # Persist lazily, right after the first symbolic
                        # compile (save_plan never raises — I/O failures
                        # count into the store's own stats).
                        plan.attach_compile_sink(self.store.save_plan)
                plan.attach_execution_sink(self._note_execution)
            except BaseException:
                with self._lock:
                    event = self._inflight.pop(signature)
                event.set()
                raise
            with self._lock:
                self._plans[signature] = plan
                self._plans.move_to_end(signature)
                self.stats.compiles += 1
                while len(self._plans) > self.maxsize:
                    self._plans.popitem(last=False)
                    self.stats.evictions += 1
                event = self._inflight.pop(signature)
            event.set()
            return plan

    def warm_start(self, limit: Optional[int] = None) -> int:
        """Preload plans from the disk store into the memory tier.

        Returns the number of plans loaded.  A warm-started cache serves
        its first request for every stored cascade shape as a memory
        *hit* with zero symbolic compiles — the property the
        multi-process worker tier (:mod:`repro.engine.pool`) asserts on
        restart.  Loads stop at ``limit`` (default: the cache capacity);
        artifacts that fail to load are skipped, counted by the store.
        """
        if self.store is None:
            return 0
        budget = self.maxsize if limit is None else min(limit, self.maxsize)
        loaded = 0
        for signature in self.store.signatures():
            if loaded >= budget:
                break
            with self._lock:
                if signature in self._plans:
                    continue
            plan = self.store.load_plan(signature)
            if plan is None:
                continue
            plan.attach_execution_sink(self._note_execution)
            with self._lock:
                if signature in self._plans:
                    continue
                self._plans[signature] = plan
                while len(self._plans) > self.maxsize:
                    self._plans.popitem(last=False)
                    self.stats.evictions += 1
            self.store.stats.note("warm_loads")
            loaded += 1
        return loaded
