"""Disk-backed plan artifacts: persist compiled fusion plans across processes.

A :class:`PlanStore` is the persistence tier behind
:class:`~repro.engine.cache.PlanCache`: memory LRU -> disk artifact ->
symbolic compile.  Every compiled :class:`~repro.engine.plan.FusionPlan`
(including failed ACRF analyses, so "not fusable" is also remembered) is
serialized to a versioned JSON artifact keyed by the structural
:func:`~repro.engine.plan.cascade_signature`, and a restarted or
freshly-forked worker process reconstructs the plan from disk with zero
symbolic work — the "warm start" that makes a multi-process serving tier
(:mod:`repro.engine.pool`) cheap to scale.

Artifact layout and versioning::

    <root>/
      v<FORMAT_VERSION>-<env_tag>/     # one directory per (format, env)
        <cascade_signature>.json       # one artifact per cascade structure
        <cascade_signature>.json.tmp-* # in-flight atomic writes (transient)

``env_tag`` hashes the environment dict (GPU model, optimizer level —
anything that would make a cached artifact stale); a process with a
different environment simply sees an empty directory and recompiles.
Inside an artifact the format version and environment are repeated, so a
mangled or hand-moved file is still detected.  Writes are atomic
(``os.replace`` of a unique temp file), so a crashed writer can never
leave a half-written artifact under the real name.  Loads never raise on
bad artifacts: corrupt/truncated/mismatched files count into the store's
``corrupt`` / ``version_mismatch`` counters and fall back to a recompile
(which then overwrites the bad artifact — the store self-heals).

Expressions serialize as tagged nested lists (``["c", 1.5]``,
``["v", "m"]``, ``["u", "exp", ...]``, ``["b", "add", ..., ...]``).
JSON round-trips Python floats exactly (``repr`` shortest-round-trip),
so a reconstructed plan is *bitwise* identical in execution to the one
that was saved.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.acrf import Decomposition, NotFusableError, Term
from ..core.fused import (
    NEW_SUFFIX,
    FusedCascade,
    FusedReduction,
    FusedTerm,
    _rename,
)
from ..core.ops import combine_op
from ..core.spec import Cascade, Reduction
from ..obs.clock import monotonic_s
from ..symbolic import Binary, Const, Expr, Unary, Var, make_evaluator

#: Bump when the artifact payload layout changes; old artifacts land in a
#: different directory and are recompiled, never misread.
FORMAT_VERSION = 1


class PlanStoreError(RuntimeError):
    """An artifact exists but cannot be used (corrupt, wrong version)."""


# -- expression codec ---------------------------------------------------------
def expr_to_json(e: Expr) -> list:
    """Encode an expression tree as tagged nested lists (JSON-safe)."""
    if isinstance(e, Const):
        return ["c", e.value]
    if isinstance(e, Var):
        return ["v", e.name]
    if isinstance(e, Unary):
        return ["u", e.op, expr_to_json(e.arg)]
    if isinstance(e, Binary):
        return ["b", e.op, expr_to_json(e.lhs), expr_to_json(e.rhs)]
    raise TypeError(f"cannot serialize expression node {e!r}")


def expr_from_json(node) -> Expr:
    """Decode :func:`expr_to_json` output back into an expression tree."""
    tag = node[0]
    if tag == "c":
        return Const(float(node[1]))
    if tag == "v":
        return Var(str(node[1]))
    if tag == "u":
        return Unary(str(node[1]), expr_from_json(node[2]))
    if tag == "b":
        return Binary(str(node[1]), expr_from_json(node[2]), expr_from_json(node[3]))
    raise PlanStoreError(f"unknown expression tag {tag!r}")


# -- cascade / fused-artifact codec ------------------------------------------
def cascade_to_json(cascade: Cascade) -> Dict[str, object]:
    return {
        "name": cascade.name,
        "element_vars": list(cascade.element_vars),
        "reductions": [
            {
                "name": red.name,
                "op_name": red.op_name,
                "topk": red.topk,
                "fn": expr_to_json(red.fn),
            }
            for red in cascade.reductions
        ],
    }


def cascade_from_json(payload: Dict[str, object]) -> Cascade:
    reductions = tuple(
        Reduction(
            name=str(red["name"]),
            op_name=str(red["op_name"]),
            fn=expr_from_json(red["fn"]),
            topk=red["topk"],
        )
        for red in payload["reductions"]
    )
    return Cascade(
        name=str(payload["name"]),
        element_vars=tuple(str(v) for v in payload["element_vars"]),
        reductions=reductions,
    )


def fused_to_json(fused: FusedCascade) -> List[Dict[str, object]]:
    """Per-reduction fusion artifacts (everything ACRF derived)."""
    out: List[Dict[str, object]] = []
    for fr in fused.reductions:
        entry: Dict[str, object] = {"dep_names": list(fr.dep_names)}
        if fr.decomposition is None:  # top-k carrier: H = e, nothing to store
            entry["kind"] = "topk"
        elif fr.is_multi_term:
            entry["kind"] = "multi"
            entry["otimes"] = fr.decomposition.otimes.name
            entry["terms"] = [
                {"g": expr_to_json(t.g), "h": expr_to_json(t.h)} for t in fr.terms
            ]
        else:
            entry["kind"] = "single"
            entry["otimes"] = fr.decomposition.otimes.name
            entry["g"] = expr_to_json(fr.decomposition.g)
            entry["h"] = expr_to_json(fr.h)
            entry["gh"] = expr_to_json(fr.gh)
            entry["h_ratio"] = expr_to_json(fr.h_ratio)
        out.append(entry)
    return out


def fused_from_json(
    cascade: Cascade, reductions: List[Dict[str, object]]
) -> FusedCascade:
    """Rebuild a :class:`FusedCascade` from its artifact payload.

    Mirrors the tail of :func:`repro.core.fused.compile_fused`, except
    the expressions come from disk instead of the ACRF analysis — the
    simplified ``gh`` / ``h_ratio`` forms were persisted, so no symbolic
    work (decomposition, simplification, equivalence sampling) runs.
    """
    if len(reductions) != len(cascade.reductions):
        raise PlanStoreError("artifact reduction count does not match cascade")
    rebuilt: List[FusedReduction] = []
    for red, entry in zip(cascade.reductions, reductions):
        dep_names = tuple(str(d) for d in entry["dep_names"])
        kind = entry["kind"]
        if kind == "topk":
            rebuilt.append(
                FusedReduction(reduction=red, dep_names=dep_names, decomposition=None)
            )
            continue
        otimes = combine_op(str(entry["otimes"]))
        if kind == "multi":
            terms = tuple(
                Term(g=expr_from_json(t["g"]), h=expr_from_json(t["h"]))
                for t in entry["terms"]
            )
            rebuilt.append(
                FusedReduction(
                    reduction=red,
                    dep_names=dep_names,
                    decomposition=Decomposition(otimes=otimes, terms=terms),
                    terms=tuple(
                        FusedTerm(
                            g=t.g,
                            h=t.h,
                            eval_g=make_evaluator(t.g),
                            eval_h=make_evaluator(t.h),
                        )
                        for t in terms
                    ),
                )
            )
            continue
        if kind != "single":
            raise PlanStoreError(f"unknown fused-reduction kind {kind!r}")
        g = expr_from_json(entry["g"])
        h = expr_from_json(entry["h"])
        gh = expr_from_json(entry["gh"])
        h_ratio = expr_from_json(entry["h_ratio"])
        active_deps = tuple(n for n in dep_names if n in h.free_vars())
        h_new = _rename(h, active_deps, NEW_SUFFIX)
        rebuilt.append(
            FusedReduction(
                reduction=red,
                dep_names=dep_names,
                decomposition=Decomposition(otimes=otimes, terms=(Term(g=g, h=h),)),
                gh=gh,
                h=h,
                h_ratio=h_ratio,
                _eval_gh=make_evaluator(gh),
                _eval_h_ratio=make_evaluator(h_ratio),
                _eval_h_new=make_evaluator(h_new),
            )
        )
    return FusedCascade(cascade=cascade, reductions=tuple(rebuilt))


# -- the store ---------------------------------------------------------------
class PlanStoreStats:
    """Thread-safe counters describing one store's behavior."""

    _FIELDS = (
        "hits", "misses", "corrupt", "version_mismatch",
        "saves", "save_errors", "warm_loads",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self._FIELDS:
            setattr(self, name, 0)
        self.load_seconds_total = 0.0

    def note(self, field: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)

    def note_load_seconds(self, seconds: float) -> None:
        with self._lock:
            self.load_seconds_total += seconds

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            snap = {name: getattr(self, name) for name in self._FIELDS}
            snap["load_seconds_total"] = self.load_seconds_total
            hits = snap["hits"]
            lookups = hits + snap["misses"] + snap["corrupt"] + snap["version_mismatch"]
            snap["hit_rate"] = hits / lookups if lookups else 0.0
            snap["mean_load_seconds"] = (
                self.load_seconds_total / hits if hits else 0.0
            )
        return snap


def default_store_env() -> Dict[str, object]:
    """Environment stamp baked into every artifact's key.

    Anything that would make a persisted plan stale for a different
    deployment belongs here; today that is the simulated GPU model and
    the tile-IR optimizer level the ``tile_ir`` backend compiles
    against.  Two processes with different stamps share a store root
    without ever reading each other's artifacts.
    """
    gpu, opt_level = "A10", 2
    try:  # read the live backend defaults so the stamp tracks them
        from .backends import DEFAULT_TILE_OPT_LEVEL

        opt_level = DEFAULT_TILE_OPT_LEVEL
    except Exception:
        pass
    return {"gpu": str(gpu), "opt_level": int(opt_level)}


def _env_tag(env: Dict[str, object]) -> str:
    blob = json.dumps(env, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:8]


class PlanStore:
    """Versioned, atomic, corruption-tolerant plan artifacts on disk.

    ``save_plan`` never raises (I/O errors count into ``save_errors``);
    ``load_plan`` never raises on bad artifacts (they count into
    ``corrupt`` / ``version_mismatch`` and the caller recompiles).  Both
    are safe to share between concurrent processes: writes are atomic
    temp-file renames, and the worst race outcome is the same artifact
    written twice with identical bytes.
    """

    def __init__(
        self,
        root,
        *,
        env: Optional[Dict[str, object]] = None,
    ) -> None:
        self.root = Path(root)
        self.env = dict(default_store_env() if env is None else env)
        self.stats = PlanStoreStats()
        self._dir = self.root / f"v{FORMAT_VERSION}-{_env_tag(self.env)}"
        self._dir.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """The (format-version, environment)-keyed artifact directory."""
        return self._dir

    def path_for(self, signature: str) -> Path:
        return self._dir / f"{signature}.json"

    def signatures(self) -> Tuple[str, ...]:
        """Signatures with an artifact on disk, in name order."""
        try:
            names = sorted(p.stem for p in self._dir.glob("*.json"))
        except OSError:
            return ()
        return tuple(names)

    def __contains__(self, signature: str) -> bool:
        return self.path_for(signature).exists()

    def __len__(self) -> int:
        return len(self.signatures())

    # -- save ----------------------------------------------------------------
    def save_plan(self, plan) -> bool:
        """Persist a compiled plan's artifacts; True when written.

        Uncompiled plans are skipped (there is nothing to persist —
        saving would just force the symbolic work this store exists to
        avoid).  Failed analyses persist as ``not_fusable`` markers so a
        warm worker does not rerun a doomed ACRF either.
        """
        if not plan.is_compiled:
            return False
        payload: Dict[str, object] = {
            "format_version": FORMAT_VERSION,
            "env": self.env,
            "signature": plan.signature,
            "cascade": cascade_to_json(plan.cascade),
            "compile_seconds": plan.compile_seconds,
        }
        if plan._fusion_error is not None:
            payload["status"] = "not_fusable"
            payload["error"] = str(plan._fusion_error)
        else:
            payload["status"] = "fused"
            payload["reductions"] = fused_to_json(plan._fused)
        path = self.path_for(plan.signature)
        try:
            blob = json.dumps(payload, sort_keys=True)
            fd, tmp = tempfile.mkstemp(
                prefix=path.name + ".tmp-", dir=str(self._dir)
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except (OSError, TypeError, ValueError):
            self.stats.note("save_errors")
            return False
        self.stats.note("saves")
        return True

    # -- load ----------------------------------------------------------------
    def load_plan(self, signature: str, cascade: Optional[Cascade] = None):
        """Reconstruct the stored plan for ``signature``, or None.

        ``cascade`` is optional — the artifact carries the full cascade
        spec, which is what lets :meth:`PlanCache.warm_start` preload
        plans it has never seen a request for.  Every failure mode
        (missing file, truncated JSON, format/environment mismatch,
        payload that fails reconstruction) returns None after bumping
        the matching counter; the caller recompiles and the save path
        overwrites the bad artifact.
        """
        from .plan import FusionPlan  # deferred: plan.py must not import store

        path = self.path_for(signature)
        start = monotonic_s()
        try:
            blob = path.read_text()
        except FileNotFoundError:
            self.stats.note("misses")
            return None
        except (OSError, ValueError):  # ValueError: undecodable bytes
            self.stats.note("corrupt")
            return None
        try:
            payload = json.loads(blob)
        except ValueError:
            self.stats.note("corrupt")
            return None
        try:
            if payload.get("format_version") != FORMAT_VERSION or (
                payload.get("env") != self.env
            ):
                self.stats.note("version_mismatch")
                return None
            if payload.get("signature") != signature:
                self.stats.note("corrupt")
                return None
            restored = cascade_from_json(payload["cascade"])
            status = payload.get("status")
            if status == "not_fusable":
                plan = FusionPlan.restored(
                    cascade if cascade is not None else restored,
                    signature,
                    fusion_error=NotFusableError(str(payload.get("error", ""))),
                    compile_seconds=payload.get("compile_seconds"),
                )
            elif status == "fused":
                fused = fused_from_json(restored, payload["reductions"])
                plan = FusionPlan.restored(
                    cascade if cascade is not None else restored,
                    signature,
                    fused=fused,
                    compile_seconds=payload.get("compile_seconds"),
                )
            else:
                self.stats.note("corrupt")
                return None
        except Exception:
            # any malformed payload (missing keys, bad expression tags,
            # spec validation failures) is a corrupt artifact, never a
            # crash on the serving path
            self.stats.note("corrupt")
            return None
        self.stats.note("hits")
        self.stats.note_load_seconds(monotonic_s() - start)
        return plan

    # -- introspection -------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "root": str(self.root),
            "directory": str(self._dir),
            "format_version": FORMAT_VERSION,
            "env": dict(self.env),
            "artifacts": len(self),
        }
        info.update(self.stats.snapshot())
        return info

    def __repr__(self) -> str:
        return f"PlanStore({str(self._dir)!r}, artifacts={len(self)})"


def _iter_store_samples(store: PlanStore) -> Iterable:
    """Registry-collector samples for one store (see ``Engine``)."""
    from ..obs.metrics import Sample

    snap = store.stats.snapshot()
    counters = (
        ("plan_store_hits_total", "hits", "Artifacts loaded from disk"),
        ("plan_store_misses_total", "misses", "Lookups with no artifact"),
        ("plan_store_corrupt_total", "corrupt",
         "Corrupt/truncated artifacts skipped"),
        ("plan_store_version_mismatch_total", "version_mismatch",
         "Stale-format artifacts skipped"),
        ("plan_store_saves_total", "saves", "Artifacts written"),
        ("plan_store_save_errors_total", "save_errors",
         "Artifact writes that failed"),
        ("plan_store_warm_loads_total", "warm_loads",
         "Plans preloaded by warm_start"),
    )
    for name, field, help_text in counters:
        yield Sample(name, snap[field], kind="counter", help=help_text)
    yield Sample("plan_store_load_seconds_total", snap["load_seconds_total"],
                 kind="counter", help="Cumulative artifact load latency")
    yield Sample("plan_store_artifacts", len(store),
                 help="Artifacts on disk for this environment")
