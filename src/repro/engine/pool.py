"""Multi-process worker tier: N serving engines warm-started from one store.

A :class:`WorkerPool` forks (or spawns) ``num_workers`` processes, each
hosting a full :class:`~repro.engine.Engine` with its serving runtime
started and its plan cache warm-started from the shared
:class:`~repro.engine.store.PlanStore` — so a freshly created worker
performs **zero** symbolic compiles for every cascade shape the store
has seen.  The data plane is a duplex pipe per worker carrying pickled
request/response tuples; NumPy arrays round-trip through pickle with
their float64 bits intact, so a response is bitwise identical to an
in-process execution.

Wire protocol (one tuple per message):

* parent -> worker: ``("submit", req_id, cascade, inputs, mode, kwargs)``,
  ``("control", seq, op)`` with ``op`` in ``ping``/``stats``/``drain``,
  ``("chaos", kind, arg)`` (fault injection, see
  :mod:`repro.harness.chaos`), and ``("close",)``.
* worker -> parent: ``("result", req_id, outputs)``,
  ``("error", req_id, exception)``, ``("control", seq, payload)``.

The parent runs one reader thread per worker that resolves the
outstanding futures, so worker->parent sends always drain (no pipe
deadlock); the worker's scheduler threads block on a full pipe at most
until the reader catches up — ordinary backpressure.  A worker that dies
fails its outstanding futures with :class:`WorkerError`; the router
(:mod:`repro.engine.router`) resubmits the failed in-flight requests to
a live worker and the pool can :meth:`~WorkerPool.restart` the slot,
warm again from the store — the :class:`~repro.engine.supervisor.
Supervisor` automates exactly that on a background heartbeat thread.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from multiprocessing.reduction import ForkingPickler
from typing import Dict, Iterable, List, Optional, Tuple

from ..obs.clock import monotonic_s
from ..obs.metrics import Sample, relabel
from .plan import fusion_compile_count


class WorkerError(RuntimeError):
    """A worker process died or stopped answering."""


class RequestSerializationError(ValueError):
    """One request's payload could not be pickled onto the wire.

    This is a *request-level* error — the worker is healthy and keeps
    serving; only the offending call fails.  Transport failures (dead
    worker, closed pipe) raise :class:`WorkerError` instead, which is
    what marks a worker slot dead and triggers failover.
    """


def _worker_main(conn, worker_id: str, store_root, env, cache_size: int,
                 warm: bool, serving_config=None) -> None:
    """Entry point of one worker process: serve requests off the pipe."""
    from . import Engine  # imported here so ``spawn`` contexts work too
    from .store import PlanStore

    # a forked worker inherits the parent's module-level compile counter;
    # report compiles performed by *this* process only
    compile_base = fusion_compile_count()
    store = PlanStore(store_root, env=env) if store_root is not None else None
    engine = Engine(
        cache_size=cache_size, serving_config=serving_config, plan_store=store
    )
    warm_loaded = engine.warm_start() if (warm and store is not None) else 0
    serving = engine.serving()
    send_lock = threading.Lock()  # done-callbacks run on scheduler threads

    def send(message) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (OSError, ValueError, BrokenPipeError):
                pass  # parent gone; the main loop will see EOF and exit

    def finish(req_id: int, future) -> None:
        error = future.exception()
        if error is None:
            send(("result", req_id, future.result()))
        else:
            send(("error", req_id, error))

    def stats_payload() -> Dict[str, object]:
        payload = dict(engine.stats.describe())
        payload["worker"] = worker_id
        payload["pid"] = os.getpid()
        payload["load"] = serving.load()
        payload["fusion_compiles"] = fusion_compile_count() - compile_base
        payload["warm_loaded"] = warm_loaded
        payload["samples"] = list(engine.metrics.collect())
        return payload

    # fault-injection state (repro.harness.chaos): crash_after counts
    # down per incoming submit and dies *before* processing, so the
    # request is genuinely lost in flight — the failure mode the
    # router's retry path has to cover
    crash_after: Optional[int] = None

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "submit":
            if crash_after is not None:
                crash_after -= 1
                if crash_after <= 0:
                    os._exit(9)  # simulated hard crash mid-request
            _, req_id, cascade, inputs, mode, kwargs = message
            try:
                future = serving.submit(cascade, inputs, mode, **kwargs)
            except BaseException as err:  # admission/validation errors
                send(("error", req_id, err))
            else:
                future.add_done_callback(
                    lambda f, r=req_id: finish(r, f)
                )
        elif op == "chaos":
            _, kind, arg = message
            if kind == "hang":
                # wedge hard: hold the send lock while sleeping, so the
                # pipe stops draining in BOTH directions — in-flight
                # results stall (their done-callbacks block on the
                # lock), pings go unanswered, futures would hang
                # forever without client-side deadlines
                with send_lock:
                    time.sleep(3600.0 if arg is None else float(arg))
            elif kind == "delay":
                # a stall (GC pause / CPU theft): the recv loop sleeps,
                # already-submitted work still completes and responds
                time.sleep(0.0 if arg is None else float(arg))
            elif kind == "crash_after":
                crash_after = 1 if arg is None else int(arg)
                if crash_after <= 0:
                    os._exit(9)
        elif op == "control":
            _, seq, what = message
            if what == "ping":
                send(("control", seq, {
                    "worker": worker_id, "pid": os.getpid(),
                    "load": serving.load(),
                }))
            elif what == "stats":
                send(("control", seq, stats_payload()))
            elif what == "drain":
                serving.drain()
                send(("control", seq, {"drained": True}))
            else:
                send(("control", seq, None))
        elif op == "close":
            break
    engine.close()
    try:
        conn.close()
    except OSError:
        pass


class _WorkerHandle:
    """Parent-side state for one worker process."""

    def __init__(self, name: str, process, conn) -> None:
        self.name = name
        self.process = process
        self.conn = conn
        self.send_lock = threading.Lock()
        self.state_lock = threading.Lock()
        self.pending: Dict[int, "Future"] = {}
        self.control: Dict[int, List] = {}  # seq -> [Event, payload]
        self.dead = False
        self.last_ping: Optional[Dict[str, object]] = None
        self.last_stats: Optional[Dict[str, object]] = None
        self.reader: Optional[threading.Thread] = None

    @property
    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()

    @property
    def outstanding(self) -> int:
        with self.state_lock:
            return len(self.pending)


class WorkerPool:
    """N warm-started serving workers behind pickled-pipe data planes.

    Typical lifecycle::

        store = PlanStore(cache_dir)
        with WorkerPool(4, store) as pool:
            future = pool.submit_to(0, cascade, inputs, tenant="web")
            outputs = future.result()

    ``submit_to`` addresses one worker explicitly — load balancing and
    signature stickiness live one layer up, in
    :class:`~repro.engine.router.Router`.
    """

    def __init__(
        self,
        num_workers: int,
        store=None,
        *,
        cache_size: int = 256,
        warm_start: bool = True,
        serving_config=None,
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        # the store may be a PlanStore (its root + env are forwarded so
        # each worker builds its own handle), a bare path, or None
        self._store_root = getattr(store, "root", store)
        self._store_env = getattr(store, "env", None)
        self._cache_size = cache_size
        self._warm = warm_start
        self._serving_config = serving_config
        if start_method is None:
            # fork is cheap and inherits the imported modules; fall back
            # to the platform default where fork is unavailable
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else None
        self._ctx = multiprocessing.get_context(start_method)
        self._handles: List[Optional[_WorkerHandle]] = [None] * num_workers
        self._req_ids = itertools.count(1)
        self._seqs = itertools.count(1)
        self._lock = threading.Lock()
        # serialize restarts per slot so a supervisor and a manual
        # restart() never race spawning two processes into one slot
        self._slot_locks = [threading.Lock() for _ in range(num_workers)]
        self._started = False
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def store_root(self):
        """Plan-store root the workers warm-start from (may be None)."""
        return self._store_root

    @property
    def store_env(self):
        """Plan-store environment fingerprint forwarded to workers."""
        return self._store_env

    @property
    def serving_config(self):
        """ServingConfig each worker's scheduler is built with."""
        return self._serving_config

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn every worker (idempotent)."""
        with self._lock:
            if self._closed:
                raise WorkerError("worker pool is closed")
            if self._started:
                return self
            self._started = True
        for index in range(self.num_workers):
            self._spawn(index)
        return self

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def _spawn(self, index: int) -> _WorkerHandle:
        name = f"w{index}"
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, name, self._store_root, self._store_env,
                  self._cache_size, self._warm, self._serving_config),
            name=f"repro-worker-{name}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent keeps only its end
        handle = _WorkerHandle(name, process, parent_conn)
        handle.reader = threading.Thread(
            target=self._read_loop, args=(handle,),
            name=f"repro-pool-reader-{name}", daemon=True,
        )
        handle.reader.start()
        with self._lock:
            self._handles[index] = handle
        return handle

    def _read_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                message = handle.conn.recv()
            except (EOFError, OSError):
                break
            tag = message[0]
            if tag == "result":
                with handle.state_lock:
                    future = handle.pending.pop(message[1], None)
                if future is not None:
                    future.set_result(message[2])
            elif tag == "error":
                with handle.state_lock:
                    future = handle.pending.pop(message[1], None)
                if future is not None:
                    future.set_exception(message[2])
            elif tag == "control":
                with handle.state_lock:
                    slot = handle.control.pop(message[1], None)
                if slot is not None:
                    slot[1] = message[2]
                    slot[0].set()
        # worker gone: fail everything still outstanding
        handle.dead = True
        with handle.state_lock:
            pending = list(handle.pending.values())
            handle.pending.clear()
            controls = list(handle.control.values())
            handle.control.clear()
        error = WorkerError(f"worker {handle.name} died")
        for future in pending:
            if not future.done():
                future.set_exception(error)
        for slot in controls:
            slot[0].set()

    # -- data plane ---------------------------------------------------------
    def submit_to(self, index: int, cascade, inputs, mode: str = "auto",
                  **kwargs) -> "Future":
        """Schedule one request on worker ``index``; returns a Future.

        ``kwargs`` pass through to the worker's
        :meth:`~repro.engine.serving.ServingEngine.submit` — tenant,
        priority, deadline_s, backend options — so the SLA scheduler
        semantics are identical to the in-process path.  Raises
        :class:`WorkerError` synchronously when the worker is not alive,
        :class:`RequestSerializationError` when the *payload* cannot be
        pickled (the worker stays alive — only this request fails).
        """
        from concurrent.futures import Future

        handle = self._handle(index)
        if not handle.alive:
            raise WorkerError(f"worker {handle.name} is not alive")
        req_id = next(self._req_ids)
        future: Future = Future()
        with handle.state_lock:
            handle.pending[req_id] = future
        # serialize before touching the pipe: a pickling failure is the
        # caller's bug, not the worker's death — it must not condemn the
        # slot (or fail over, re-poisoning every other worker in turn)
        try:
            payload = ForkingPickler.dumps(
                ("submit", req_id, cascade, inputs, mode, kwargs)
            )
        except Exception as err:
            with handle.state_lock:
                handle.pending.pop(req_id, None)
            raise RequestSerializationError(
                f"request for worker {handle.name} is not picklable: {err!r}"
            ) from err
        try:
            with handle.send_lock:
                handle.conn.send_bytes(payload)
        except (OSError, ValueError, BrokenPipeError) as err:
            with handle.state_lock:
                handle.pending.pop(req_id, None)
            handle.dead = True
            raise WorkerError(f"worker {handle.name} is not reachable") from err
        return future

    # -- control plane ------------------------------------------------------
    def _handle(self, index: int) -> _WorkerHandle:
        with self._lock:
            if not self._started:
                raise WorkerError("worker pool is not started")
            handle = self._handles[index]
        if handle is None:
            raise WorkerError(f"worker w{index} was never spawned")
        return handle

    def _control(self, index: int, op: str, timeout: float):
        handle = self._handle(index)
        if not handle.alive:
            raise WorkerError(f"worker {handle.name} is not alive")
        seq = next(self._seqs)
        slot = [threading.Event(), None]
        with handle.state_lock:
            handle.control[seq] = slot
        try:
            with handle.send_lock:
                handle.conn.send(("control", seq, op))
        except (OSError, ValueError, BrokenPipeError) as err:
            with handle.state_lock:
                handle.control.pop(seq, None)
            handle.dead = True
            raise WorkerError(f"worker {handle.name} is not reachable") from err
        if not slot[0].wait(timeout) or (handle.dead and slot[1] is None):
            with handle.state_lock:
                handle.control.pop(seq, None)
            raise WorkerError(
                f"worker {handle.name} did not answer {op!r} within {timeout}s"
            )
        return slot[1]

    def workers(self) -> Tuple[str, ...]:
        return tuple(f"w{i}" for i in range(self.num_workers))

    def alive(self) -> List[bool]:
        """Liveness per worker slot (False before start/after death)."""
        with self._lock:
            handles = list(self._handles)
        return [h is not None and h.alive for h in handles]

    def outstanding(self) -> List[int]:
        """Requests submitted but not yet resolved, per worker.

        This is the router's queue-depth signal: it is tracked entirely
        parent-side (no pipe round trip), so balancing decisions stay
        O(workers) per request.
        """
        with self._lock:
            handles = list(self._handles)
        return [h.outstanding if h is not None else 0 for h in handles]

    def ping_one(self, index: int,
                 timeout: float = 5.0) -> Optional[Dict[str, object]]:
        """Health-check one worker; None when dead or unresponsive.

        A live process that does not answer within ``timeout`` — a *hung*
        worker wedged mid-request or not draining its pipe — also returns
        None; combined with :meth:`alive` this is how the supervisor
        tells a hang (alive but mute) from a crash (not alive).
        """
        try:
            payload = self._control(index, "ping", timeout)
        except WorkerError:
            return None
        handle = self._handle(index)
        handle.last_ping = payload
        return payload

    def ping(self, timeout: float = 5.0) -> List[Optional[Dict[str, object]]]:
        """Health-check every worker; None entries are dead/unresponsive."""
        return [self.ping_one(index, timeout)
                for index in range(self.num_workers)]

    def pids(self) -> List[Optional[int]]:
        """OS pid per worker slot (None before spawn).

        A slot whose pid changed was restarted — the chaos harness uses
        this as its recovery signal.
        """
        with self._lock:
            handles = list(self._handles)
        return [h.process.pid if h is not None else None for h in handles]

    def spawned(self) -> List[bool]:
        """Whether each slot has ever had a process (dead ones count)."""
        with self._lock:
            handles = list(self._handles)
        return [h is not None for h in handles]

    def kill(self, index: int) -> None:
        """SIGKILL one worker (fault injection / hung-slot reclaim).

        The reader thread observes EOF, fails the slot's in-flight
        futures with :class:`WorkerError`, and the slot stays dead until
        :meth:`restart` (or the supervisor) replaces it.
        """
        handle = self._handle(index)
        if handle.process.is_alive():
            handle.process.kill()

    def inject(self, index: int, kind: str, arg=None) -> None:
        """Send a ``("chaos", kind, arg)`` fault to one worker.

        Kinds understood by the worker loop: ``"hang"`` (stop draining
        the pipe for ``arg`` seconds — default: forever), ``"delay"``
        (pause the recv loop ``arg`` seconds), ``"crash_after"``
        (``os._exit(9)`` on the ``arg``-th subsequent submit).  Test-only
        surface; see :mod:`repro.harness.chaos`.
        """
        handle = self._handle(index)
        if not handle.alive:
            raise WorkerError(f"worker {handle.name} is not alive")
        try:
            with handle.send_lock:
                handle.conn.send(("chaos", kind, arg))
        except (OSError, ValueError, BrokenPipeError) as err:
            handle.dead = True
            raise WorkerError(f"worker {handle.name} is not reachable") from err

    def stats(self, timeout: float = 30.0) -> Dict[str, Dict[str, object]]:
        """Live per-worker stat sections (engine describe + worker extras).

        Each payload is the worker engine's ``stats.describe()`` plus
        ``worker``/``pid``/``load``/``fusion_compiles``/``warm_loaded``
        and its raw metric ``samples``.  Dead workers report
        ``{"alive": False}``.  Responses are cached for the non-blocking
        rollup consumers (:meth:`collect_samples`, an attached engine's
        describe).
        """
        out: Dict[str, Dict[str, object]] = {}
        for index in range(self.num_workers):
            name = f"w{index}"
            try:
                payload = self._control(index, "stats", timeout)
            except WorkerError:
                out[name] = {"alive": False}
                continue
            payload["alive"] = True
            handle = self._handle(index)
            handle.last_stats = payload
            out[name] = payload
        return out

    def cached_stats(self) -> Dict[str, Dict[str, object]]:
        """Last-known per-worker stats without touching the pipes."""
        with self._lock:
            handles = list(self._handles)
        out: Dict[str, Dict[str, object]] = {}
        for index, handle in enumerate(handles):
            if handle is None:
                continue
            payload = handle.last_stats
            if payload is not None:
                out[handle.name] = payload
            elif not handle.alive:
                out[f"w{index}"] = {"alive": False}
        return out

    def fusion_compiles(self, timeout: float = 30.0) -> int:
        """Total symbolic compiles performed across all live workers."""
        total = 0
        for payload in self.stats(timeout).values():
            total += int(payload.get("fusion_compiles", 0))
        return total

    def drain(self, timeout: float = 120.0) -> bool:
        """Block until every live worker's scheduler is empty.

        ``timeout`` is a single shared budget across all slots (not
        per-worker — an N-worker pool never blocks N× the requested
        time).  Returns True when every live worker drained within the
        budget, False when the deadline expired with workers still busy.
        """
        deadline = monotonic_s() + timeout
        drained = True
        for index in range(self.num_workers):
            remaining = max(0.0, deadline - monotonic_s())
            try:
                self._control(index, "drain", remaining)
            except WorkerError:
                # dead workers have nothing left to drain; a live one
                # that blew the shared budget counts against the result
                handle = self._handles[index]
                if handle is not None and handle.alive:
                    drained = False
        return drained

    def restart(self, index: int, *, drain: bool = True,
                timeout: float = 30.0) -> None:
        """Gracefully recycle one worker slot.

        A live worker is drained first (unless ``drain=False``), told to
        close, and joined; the replacement warm-starts from the shared
        store, so the recycled slot comes back with zero recompiles for
        every persisted cascade shape.  Raises :class:`WorkerError` once
        the pool is closed (a background supervisor must not resurrect
        workers into a shut-down pool).
        """
        with self._slot_locks[index]:
            with self._lock:
                if self._closed:
                    raise WorkerError("worker pool is closed")
                handle = self._handles[index]
            if handle is not None:
                if handle.alive and drain:
                    try:
                        self._control(index, "drain", timeout)
                    except WorkerError:
                        pass
                self._shutdown_handle(handle, timeout=timeout)
            self._spawn(index)

    def _shutdown_handle(self, handle: _WorkerHandle, timeout: float) -> None:
        if handle.alive:
            try:
                with handle.send_lock:
                    handle.conn.send(("close",))
            except (OSError, ValueError, BrokenPipeError):
                pass
        handle.process.join(timeout)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(5.0)
        if handle.process.is_alive():
            # a wedged worker can mask SIGTERM (e.g. sleeping with its
            # send lock held inside a C call); escalate so restart/close
            # never leaks a zombie slot
            handle.process.kill()
            handle.process.join(5.0)
        handle.dead = True
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.reader is not None:
            handle.reader.join(5.0)

    def close(self, timeout: float = 30.0) -> None:
        """Shut every worker down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._handles)
        for handle in handles:
            if handle is not None:
                self._shutdown_handle(handle, timeout=timeout)

    # -- observability ------------------------------------------------------
    def collect_samples(self) -> Iterable[Sample]:
        """Cached worker samples relabeled with ``worker=<name>``.

        Registry-collector compatible (non-blocking: reads the stats
        cached by the last :meth:`stats` call).  Every worker engine's
        own export — cache, serving, padding, plan-store counters —
        re-exports under its worker label, plus a liveness gauge and the
        pool-side outstanding depth per worker.
        """
        alive = self.alive()
        depths = self.outstanding()
        for index, name in enumerate(self.workers()):
            yield Sample("worker_up", int(alive[index]), (("worker", name),),
                         help="Worker process liveness")
            yield Sample("worker_outstanding_requests", depths[index],
                         (("worker", name),),
                         help="Requests in flight to this worker")
        for name, payload in self.cached_stats().items():
            for sample in payload.get("samples", ()):
                yield relabel(sample, worker=name)

    def describe(self) -> Dict[str, object]:
        """Pool-level summary (live stats fetch) for reports/tests."""
        return {
            "workers": self.stats(),
            "alive": self.alive(),
            "outstanding": self.outstanding(),
        }
