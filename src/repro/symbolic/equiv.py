"""Randomized numeric equivalence testing for symbolic expressions.

The ACRF decomposability condition (Eq. 23 in the paper) is an identity
between two expressions.  Deciding such identities symbolically is
undecidable in general; like the paper (which suggests symbolic tools
plus numeric checks), we test identities by sampling.  Samples whose
evaluation leaves the expressions' domain (NaN/inf, e.g. ``log`` of a
negative number) are discarded and resampled; a minimum number of valid
samples is required for a verdict.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

import numpy as np

from .expr import Expr

#: Sampling regimes mixed together so identities are probed both near the
#: origin and at larger magnitudes, on both signs, and on (0, hi) only
#: (for ``log``/``sqrt`` domains).
_REGIMES = (
    ("uniform", -3.0, 3.0),
    ("uniform", -0.5, 0.5),
    ("uniform", 0.05, 4.0),
    ("uniform", -20.0, 20.0),
)


class EquivalenceUndecided(RuntimeError):
    """Raised when too few samples landed in the common domain."""


def sample_env(
    names: Sequence[str],
    rng: np.random.Generator,
    regime: Optional[tuple] = None,
) -> dict:
    """Draw one random environment for the given variable names."""
    if regime is None:
        regime = _REGIMES[rng.integers(len(_REGIMES))]
    _, low, high = regime
    return {name: float(rng.uniform(low, high)) for name in names}


def _valid(value) -> bool:
    arr = np.asarray(value, dtype=float)
    return bool(np.all(np.isfinite(arr)))


def numeric_equivalent(
    a: Expr,
    b: Expr,
    n_samples: int = 160,
    min_valid: int = 40,
    rtol: float = 1e-7,
    atol: float = 1e-9,
    seed: int = 0,
    fixed: Optional[Mapping[str, float]] = None,
) -> bool:
    """Return True iff ``a`` and ``b`` agree on all sampled points.

    ``fixed`` pins some variables to given values while the rest are
    sampled.  Raises :class:`EquivalenceUndecided` when fewer than
    ``min_valid`` samples stayed inside both domains.
    """
    rng = np.random.default_rng(seed)
    names = sorted((a.free_vars() | b.free_vars()) - set(fixed or ()))
    valid = 0
    for _ in range(n_samples):
        env = sample_env(names, rng)
        if fixed:
            env.update(fixed)
        with np.errstate(all="ignore"):
            va = a.evaluate(env)
            vb = b.evaluate(env)
        if not (_valid(va) and _valid(vb)):
            continue
        valid += 1
        if not np.allclose(va, vb, rtol=rtol, atol=atol):
            return False
    if valid < min_valid:
        raise EquivalenceUndecided(
            f"only {valid}/{n_samples} samples were inside the domain"
        )
    return True


def is_identically(e: Expr, value: float, seed: int = 0) -> bool:
    """Check whether ``e`` evaluates to ``value`` everywhere (sampled)."""
    rng = np.random.default_rng(seed)
    names = sorted(e.free_vars())
    valid = 0
    for _ in range(120):
        env = sample_env(names, rng)
        with np.errstate(all="ignore"):
            got = e.evaluate(env)
        if not _valid(got):
            continue
        valid += 1
        if not np.allclose(got, value, rtol=1e-8, atol=1e-10):
            return False
    if valid < 30:
        raise EquivalenceUndecided("expression domain too small to decide")
    return True


def depends_on(e: Expr, names: Iterable[str], seed: int = 0) -> bool:
    """True if perturbing any of ``names`` changes the value of ``e``.

    This is a semantic (sampled) dependency test; it sees through
    syntactic appearances like ``x - x``.
    """
    targets = [n for n in names if n in e.free_vars()]
    if not targets:
        return False
    rng = np.random.default_rng(seed)
    all_names = sorted(e.free_vars())
    for _ in range(80):
        env = sample_env(all_names, rng)
        env2 = dict(env)
        for name in targets:
            env2[name] = float(rng.uniform(-5, 5))
        with np.errstate(all="ignore"):
            va, vb = e.evaluate(env), e.evaluate(env2)
        if _valid(va) and _valid(vb) and not np.allclose(va, vb, rtol=1e-7):
            return True
    return False
