"""Immutable symbolic expression trees over the reals.

This module is the in-repo replacement for SymPy (which the paper's ACRF
algorithm suggests as an implementation vehicle).  It provides exactly the
primitives the fusion engine needs:

* construction of expressions over scalar variables,
* numeric evaluation against an environment of floats or NumPy arrays,
* substitution of variables by sub-expressions or constants,
* free-variable queries,
* structural equality / hashing (via frozen dataclasses).

Simplification lives in :mod:`repro.symbolic.simplify` and randomized
numeric equivalence in :mod:`repro.symbolic.equiv`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Union

import numpy as np

Number = Union[int, float]

#: Unary operator names understood by :class:`Unary`.
UNARY_OPS = ("neg", "abs", "exp", "log", "sqrt", "sgn")

#: Binary operator names understood by :class:`Binary`.
BINARY_OPS = ("add", "sub", "mul", "div", "max", "min", "pow")


class Expr:
    """Base class for all expression nodes.

    Nodes are immutable and hashable, so they can safely be shared, used
    as dictionary keys, and memoized.  Arithmetic operators build new
    nodes; no evaluation happens until :meth:`evaluate` is called.
    """

    # -- construction sugar -------------------------------------------------
    def __add__(self, other: "ExprLike") -> "Expr":
        return Binary("add", self, as_expr(other))

    def __radd__(self, other: "ExprLike") -> "Expr":
        return Binary("add", as_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "Expr":
        return Binary("sub", self, as_expr(other))

    def __rsub__(self, other: "ExprLike") -> "Expr":
        return Binary("sub", as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "Expr":
        return Binary("mul", self, as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "Expr":
        return Binary("mul", as_expr(other), self)

    def __truediv__(self, other: "ExprLike") -> "Expr":
        return Binary("div", self, as_expr(other))

    def __rtruediv__(self, other: "ExprLike") -> "Expr":
        return Binary("div", as_expr(other), self)

    def __pow__(self, other: "ExprLike") -> "Expr":
        return Binary("pow", self, as_expr(other))

    def __neg__(self) -> "Expr":
        return Unary("neg", self)

    # -- core operations ----------------------------------------------------
    def evaluate(self, env: Mapping[str, object]):
        """Evaluate numerically.

        ``env`` maps variable names to floats or NumPy arrays; broadcasting
        follows NumPy rules.  Unknown variables raise ``KeyError``.
        """
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "ExprLike"]) -> "Expr":
        """Return a copy with variables replaced by expressions/numbers."""
        raise NotImplementedError

    def free_vars(self) -> FrozenSet[str]:
        """Names of all variables appearing in the expression."""
        raise NotImplementedError

    def children(self) -> tuple:
        """Direct sub-expressions (empty for leaves)."""
        return ()


ExprLike = Union[Expr, Number]


def as_expr(value: ExprLike) -> Expr:
    """Coerce a number into a :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return Const(float(value))
    raise TypeError(f"cannot convert {value!r} to Expr")


@dataclass(frozen=True)
class Const(Expr):
    """A real-valued constant."""

    value: float

    def evaluate(self, env: Mapping[str, object]):
        return self.value

    def substitute(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return self

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        if self.value == int(self.value) and abs(self.value) < 1e15:
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A named scalar variable."""

    name: str

    def evaluate(self, env: Mapping[str, object]):
        return env[self.name]

    def substitute(self, mapping: Mapping[str, ExprLike]) -> Expr:
        if self.name in mapping:
            return as_expr(mapping[self.name])
        return self

    def free_vars(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def __repr__(self) -> str:
        return self.name


def _sgn(x):
    return np.sign(x)


_UNARY_FNS = {
    "neg": np.negative,
    "abs": np.abs,
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
    "sgn": _sgn,
}

_BINARY_FNS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
    "max": np.maximum,
    "min": np.minimum,
    "pow": np.power,
}

_UNARY_SYMBOLS = {"neg": "-"}
_BINARY_SYMBOLS = {"add": "+", "sub": "-", "mul": "*", "div": "/", "pow": "**"}


@dataclass(frozen=True)
class Unary(Expr):
    """Application of a unary operator (see :data:`UNARY_OPS`)."""

    op: str
    arg: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {self.op!r}")

    def evaluate(self, env: Mapping[str, object]):
        return _UNARY_FNS[self.op](self.arg.evaluate(env))

    def substitute(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return Unary(self.op, self.arg.substitute(mapping))

    def free_vars(self) -> FrozenSet[str]:
        return self.arg.free_vars()

    def children(self) -> tuple:
        return (self.arg,)

    def __repr__(self) -> str:
        if self.op == "neg":
            return f"(-{self.arg!r})"
        return f"{self.op}({self.arg!r})"


@dataclass(frozen=True)
class Binary(Expr):
    """Application of a binary operator (see :data:`BINARY_OPS`)."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def evaluate(self, env: Mapping[str, object]):
        return _BINARY_FNS[self.op](self.lhs.evaluate(env), self.rhs.evaluate(env))

    def substitute(self, mapping: Mapping[str, ExprLike]) -> Expr:
        return Binary(self.op, self.lhs.substitute(mapping), self.rhs.substitute(mapping))

    def free_vars(self) -> FrozenSet[str]:
        return self.lhs.free_vars() | self.rhs.free_vars()

    def children(self) -> tuple:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        if self.op in _BINARY_SYMBOLS:
            return f"({self.lhs!r} {_BINARY_SYMBOLS[self.op]} {self.rhs!r})"
        return f"{self.op}({self.lhs!r}, {self.rhs!r})"


# -- convenience constructors ------------------------------------------------
def const(value: Number) -> Const:
    """Build a constant node."""
    return Const(float(value))


def var(name: str) -> Var:
    """Build a variable node."""
    return Var(name)


def variables(*names: str):
    """Build several variables at once: ``x, y = variables("x", "y")``."""
    return tuple(Var(n) for n in names)


def exp(e: ExprLike) -> Expr:
    return Unary("exp", as_expr(e))


def log(e: ExprLike) -> Expr:
    return Unary("log", as_expr(e))


def sqrt(e: ExprLike) -> Expr:
    return Unary("sqrt", as_expr(e))


def absv(e: ExprLike) -> Expr:
    return Unary("abs", as_expr(e))


def sgn(e: ExprLike) -> Expr:
    return Unary("sgn", as_expr(e))


def neg(e: ExprLike) -> Expr:
    return Unary("neg", as_expr(e))


def vmax(a: ExprLike, b: ExprLike) -> Expr:
    return Binary("max", as_expr(a), as_expr(b))


def vmin(a: ExprLike, b: ExprLike) -> Expr:
    return Binary("min", as_expr(a), as_expr(b))


def recip(e: ExprLike) -> Expr:
    """Multiplicative inverse ``1/e``."""
    return Binary("div", Const(1.0), as_expr(e))


ZERO = Const(0.0)
ONE = Const(1.0)


def count_nodes(e: Expr) -> int:
    """Total number of nodes in the tree (a cheap complexity measure)."""
    return 1 + sum(count_nodes(c) for c in e.children())


def make_evaluator(e: Expr):
    """Compile an expression into a fast Python callable.

    Returns a function ``f(env)`` equivalent to ``e.evaluate(env)`` but
    with the tree walk done once up front.  Used by the executors on hot
    paths.
    """
    if isinstance(e, Const):
        value = e.value
        return lambda env: value
    if isinstance(e, Var):
        name = e.name
        return lambda env: env[name]
    if isinstance(e, Unary):
        fn = _UNARY_FNS[e.op]
        arg = make_evaluator(e.arg)
        return lambda env: fn(arg(env))
    if isinstance(e, Binary):
        fn = _BINARY_FNS[e.op]
        lhs = make_evaluator(e.lhs)
        rhs = make_evaluator(e.rhs)
        return lambda env: fn(lhs(env), rhs(env))
    raise TypeError(f"unknown node {e!r}")
