"""Algebraic simplification for symbolic expressions.

The simplifier is deliberately conservative: it applies only rewrites
that are valid wherever the original expression was defined.  The
important non-obvious machinery is the multiplicative canonicalization:
``mul``/``div`` chains are flattened into numerator/denominator factor
lists, constants are folded, structurally equal factors cancel, and all
``exp`` factors merge into a single ``exp(sum of arguments)``.  That is
what turns the formally-derived correction terms H(prev)^-1 (x) H(new)
into the numerically safe ``exp(m_prev - m_new)`` form that the
FlashAttention recurrence uses.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .expr import Binary, Const, Expr, Unary, Var

_MAX_PASSES = 10


def simplify(e: Expr) -> Expr:
    """Simplify ``e`` to a (local) fixed point."""
    previous = None
    current = e
    for _ in range(_MAX_PASSES):
        if current == previous:
            break
        previous = current
        current = _simplify_once(current)
    return current


def _simplify_once(e: Expr) -> Expr:
    if isinstance(e, (Const, Var)):
        return e
    if isinstance(e, Unary):
        return _rewrite_unary(Unary(e.op, _simplify_once(e.arg)))
    if isinstance(e, Binary):
        node = Binary(e.op, _simplify_once(e.lhs), _simplify_once(e.rhs))
        return _rewrite_binary(node)
    raise TypeError(f"unknown node {e!r}")


def _is_const(e: Expr, value: float = None) -> bool:
    if not isinstance(e, Const):
        return False
    return value is None or e.value == value


# ---------------------------------------------------------------------------
# unary rewrites
# ---------------------------------------------------------------------------
def _rewrite_unary(e: Unary) -> Expr:
    arg = e.arg
    if isinstance(arg, Const):
        folded = _fold_unary(e.op, arg.value)
        if folded is not None:
            return Const(folded)
    if e.op == "neg":
        if isinstance(arg, Unary) and arg.op == "neg":
            return arg.arg
        if isinstance(arg, Binary) and arg.op == "sub":
            return Binary("sub", arg.rhs, arg.lhs)
    if e.op == "exp" and isinstance(arg, Unary) and arg.op == "log":
        return arg.arg
    if e.op == "log" and isinstance(arg, Unary) and arg.op == "exp":
        return arg.arg
    if e.op == "abs":
        if isinstance(arg, Unary) and arg.op in ("abs", "exp", "sqrt"):
            return arg
        if isinstance(arg, Unary) and arg.op == "neg":
            return Unary("abs", arg.arg)
    return e


def _fold_unary(op: str, value: float):
    with np.errstate(all="ignore"):
        if op == "neg":
            return -value
        if op == "abs":
            return abs(value)
        if op == "exp":
            return float(np.exp(value)) if abs(value) < 700 else None
        if op == "log":
            return float(np.log(value)) if value > 0 else None
        if op == "sqrt":
            return float(np.sqrt(value)) if value >= 0 else None
        if op == "sgn":
            return float(np.sign(value))
    return None


# ---------------------------------------------------------------------------
# binary rewrites
# ---------------------------------------------------------------------------
def _rewrite_binary(e: Binary) -> Expr:
    lhs, rhs, op = e.lhs, e.rhs, e.op
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        folded = _fold_binary(op, lhs.value, rhs.value)
        if folded is not None:
            return Const(folded)

    if op in ("add", "sub"):
        return _rewrite_additive(e)
    elif op in ("mul", "div"):
        return _rewrite_multiplicative(e)
    elif op == "pow":
        if _is_const(rhs, 1.0):
            return lhs
        if _is_const(rhs, 0.0):
            return Const(1.0)
    elif op in ("max", "min"):
        if lhs == rhs:
            return lhs
    return e


def _fold_binary(op: str, a: float, b: float):
    with np.errstate(all="ignore"):
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "div":
            return a / b if b != 0 else None
        if op == "max":
            return max(a, b)
        if op == "min":
            return min(a, b)
        if op == "pow":
            try:
                result = float(a) ** float(b)
            except (OverflowError, ValueError, ZeroDivisionError):
                return None
            return result if np.isfinite(result) else None
    return None


# ---------------------------------------------------------------------------
# additive canonicalization
# ---------------------------------------------------------------------------
def _split_terms(e: Expr, sign: int = 1) -> List[Tuple[int, Expr]]:
    """Flatten an add/sub chain into signed terms."""
    if isinstance(e, Binary) and e.op == "add":
        return _split_terms(e.lhs, sign) + _split_terms(e.rhs, sign)
    if isinstance(e, Binary) and e.op == "sub":
        return _split_terms(e.lhs, sign) + _split_terms(e.rhs, -sign)
    if isinstance(e, Unary) and e.op == "neg":
        return _split_terms(e.arg, -sign)
    return [(sign, e)]


def _rewrite_additive(e: Binary) -> Expr:
    terms = _split_terms(e)
    const_sum = 0.0
    rest: List[Tuple[int, Expr]] = []
    for sign, term in terms:
        if isinstance(term, Const):
            const_sum += sign * term.value
        else:
            rest.append((sign, term))

    # Cancel x + (-x) pairs one-for-one.
    cancelled: List[Tuple[int, Expr]] = []
    for sign, term in rest:
        for i, (other_sign, other) in enumerate(cancelled):
            if other == term and other_sign == -sign:
                del cancelled[i]
                break
        else:
            cancelled.append((sign, term))
    rest = cancelled

    if not rest:
        return Const(const_sum)
    result: Expr = None
    for sign, term in rest:
        if result is None:
            result = term if sign > 0 else Unary("neg", term)
        elif sign > 0:
            result = Binary("add", result, term)
        else:
            result = Binary("sub", result, term)
    if const_sum > 0.0:
        result = Binary("add", result, Const(const_sum))
    elif const_sum < 0.0:
        result = Binary("sub", result, Const(-const_sum))
    return result


# ---------------------------------------------------------------------------
# multiplicative canonicalization
# ---------------------------------------------------------------------------
def _split_factors(e: Expr) -> Tuple[List[Expr], List[Expr]]:
    """Flatten a mul/div chain into (numerator, denominator) factor lists."""
    if isinstance(e, Binary) and e.op == "mul":
        ln, ld = _split_factors(e.lhs)
        rn, rd = _split_factors(e.rhs)
        return ln + rn, ld + rd
    if isinstance(e, Binary) and e.op == "div":
        ln, ld = _split_factors(e.lhs)
        rn, rd = _split_factors(e.rhs)
        return ln + rd, ld + rn
    return [e], []


def _neg_expr(e: Expr) -> Expr:
    if isinstance(e, Unary) and e.op == "neg":
        return e.arg
    if isinstance(e, Const):
        return Const(-e.value)
    if isinstance(e, Binary) and e.op == "sub":
        return Binary("sub", e.rhs, e.lhs)
    return Unary("neg", e)


def _sum_exprs(terms: List[Expr]) -> Expr:
    result = terms[0]
    for term in terms[1:]:
        if isinstance(term, Unary) and term.op == "neg":
            result = Binary("sub", result, term.arg)
        else:
            result = Binary("add", result, term)
    return result


def _product(parts: List[Expr]) -> Expr:
    if not parts:
        return Const(1.0)
    result = parts[0]
    for part in parts[1:]:
        result = Binary("mul", result, part)
    return result


def _rewrite_multiplicative(e: Binary) -> Expr:
    num, den = _split_factors(e)

    const_num = 1.0
    const_den = 1.0
    exp_terms: List[Expr] = []
    num_rest: List[Expr] = []
    den_rest: List[Expr] = []

    for factor in num:
        while isinstance(factor, Unary) and factor.op == "neg":
            const_num = -const_num
            factor = factor.arg
        if isinstance(factor, Const):
            const_num *= factor.value
        elif isinstance(factor, Unary) and factor.op == "exp":
            exp_terms.append(factor.arg)
        else:
            num_rest.append(factor)
    for factor in den:
        while isinstance(factor, Unary) and factor.op == "neg":
            const_den = -const_den
            factor = factor.arg
        if isinstance(factor, Const):
            const_den *= factor.value
        elif isinstance(factor, Unary) and factor.op == "exp":
            exp_terms.append(_neg_expr(factor.arg))
        else:
            den_rest.append(factor)

    if const_num == 0.0:
        return Const(0.0)

    # Cancel structurally equal factors one-for-one.
    remaining_den: List[Expr] = []
    for factor in den_rest:
        try:
            num_rest.remove(factor)
        except ValueError:
            remaining_den.append(factor)
    den_rest = remaining_den

    parts: List[Expr] = []
    const_value = const_num if const_den == 0.0 else const_num / const_den
    if const_den == 0.0:
        # division by literal zero: keep un-simplified to preserve semantics
        return e
    if const_value != 1.0 or (not num_rest and not exp_terms):
        parts.append(Const(const_value))
    parts.extend(num_rest)
    if exp_terms:
        parts.append(Unary("exp", _sum_exprs(exp_terms)))

    numerator = _product(parts)
    if not den_rest:
        return numerator
    return Binary("div", numerator, _product(den_rest))
