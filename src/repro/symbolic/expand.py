"""Distributive expansion into a sum of product terms.

Used by the multi-term decomposition extension of ACRF: when a mapping
function F_i is not directly decomposable as G(x) ⊗ H(d) (e.g. the
``(x - mean)**2`` of variance), but its reduction is a summation,
F_i can be expanded into additive terms each of which *is* decomposable,
and the linear reduction distributes over the terms.
"""

from __future__ import annotations

from typing import List

from .expr import Binary, Const, Expr, Unary


def expand(e: Expr) -> Expr:
    """Fully distribute multiplication over addition/subtraction.

    Small integer powers (2 and 3) are unrolled into products first.
    The result is semantically equal to ``e`` everywhere.
    """
    terms = expand_terms(e)
    result = terms[0]
    for term in terms[1:]:
        result = Binary("add", result, term)
    return result


def expand_terms(e: Expr) -> List[Expr]:
    """Expand and return the list of additive terms."""
    if isinstance(e, Binary):
        if e.op == "add":
            return expand_terms(e.lhs) + expand_terms(e.rhs)
        if e.op == "sub":
            return expand_terms(e.lhs) + [_negate(t) for t in expand_terms(e.rhs)]
        if e.op == "mul":
            return [
                Binary("mul", a, b)
                for a in expand_terms(e.lhs)
                for b in expand_terms(e.rhs)
            ]
        if e.op == "div":
            return [Binary("div", t, e.rhs) for t in expand_terms(e.lhs)]
        if e.op == "pow" and isinstance(e.rhs, Const) and e.rhs.value in (2.0, 3.0):
            base_terms = expand_terms(e.lhs)
            power = int(e.rhs.value)
            result = base_terms
            for _ in range(power - 1):
                result = [Binary("mul", a, b) for a in result for b in base_terms]
            return result
        return [e]
    if isinstance(e, Unary) and e.op == "neg":
        return [_negate(t) for t in expand_terms(e.arg)]
    return [e]


def _negate(e: Expr) -> Expr:
    if isinstance(e, Const):
        return Const(-e.value)
    if isinstance(e, Unary) and e.op == "neg":
        return e.arg
    return Unary("neg", e)
