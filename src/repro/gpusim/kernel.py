"""Kernel descriptors consumed by the analytical cost model.

A :class:`KernelSpec` captures the first-principles quantities that
separate fused from unfused execution on a real GPU: how many bytes
cross the global-memory bus, how many FLOPs execute on which unit, how
many thread blocks launch with what occupancy footprint, and how well
the schedule overlaps memory with compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional


@dataclass(frozen=True)
class ScheduleProfile:
    """Per-CTA engine-work decomposition of a *scheduled* kernel body.

    Produced by the tile-IR schedule optimizer
    (:mod:`repro.codegen.opt`): the body's work split by issuing engine
    (tensor cores, CUDA cores, DRAM) plus the same quantities along the
    schedule's critical path.  All quantities are device-independent
    (flops and bytes, per CTA); :func:`repro.gpusim.costmodel.kernel_times`
    prices a scheduled kernel as ``max(per-engine time, critical-path
    time)`` instead of the scalar overlap heuristic.  A serial schedule
    (``opt_level=0``) has ``cp_* == totals``: the critical path is the
    whole program-order chain, so no overlap is credited at all.
    """

    tensor_flops: float = 0.0
    cuda_flops: float = 0.0
    dram_bytes: float = 0.0
    cp_tensor_flops: float = 0.0
    cp_cuda_flops: float = 0.0
    cp_dram_bytes: float = 0.0


@dataclass(frozen=True)
class KernelSpec:
    """One GPU kernel launch."""

    name: str
    grid: int  # number of CTAs
    threads_per_cta: int = 256
    smem_bytes: int = 16 * 1024  # per CTA
    regs_per_thread: int = 64
    bytes_read: float = 0.0  # total global-memory reads
    bytes_written: float = 0.0
    flops: float = 0.0  # total floating-point operations
    tensor_cores: bool = False
    dtype: str = "fp16"  # throughput class for tensor-core math
    compute_efficiency: float = 0.7  # fraction of peak FLOPs achieved
    memory_efficiency: float = 0.8  # fraction of peak bandwidth achieved
    overlap: float = 0.8  # fraction of min(Tc, Tm) hidden by pipelining
    launch_factor: float = 1.0  # host-side dispatch cost, in launch units
    #: Per-CTA engine-work decomposition from the schedule optimizer;
    #: when set, the cost model prices the kernel from it and ignores
    #: the scalar ``overlap`` heuristic.
    schedule: Optional[ScheduleProfile] = None

    def __post_init__(self) -> None:
        if self.grid < 1:
            raise ValueError("grid must be >= 1")
        if not 0.0 < self.compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0.0 < self.memory_efficiency <= 1.0:
            raise ValueError("memory_efficiency must be in (0, 1]")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError("overlap must be in [0, 1]")

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    def with_(self, **changes) -> "KernelSpec":
        """Return a modified copy (dataclasses.replace sugar)."""
        return replace(self, **changes)


@dataclass
class Program:
    """A dependent sequence of kernels implementing one workload."""

    name: str
    kernels: List[KernelSpec] = field(default_factory=list)

    def add(self, kernel: KernelSpec) -> "Program":
        self.kernels.append(kernel)
        return self

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def total_bytes(self) -> float:
        return sum(k.total_bytes for k in self.kernels)

    @property
    def total_flops(self) -> float:
        return sum(k.flops for k in self.kernels)
