"""Analytical latency model for simulated kernels.

The model follows the classical roofline-with-occupancy formulation:

* occupancy — how many CTAs fit on one SM given shared-memory,
  thread and register footprints;
* per-wave time — the resident CTA set on one SM takes
  ``max(Tc, Tm) + (1 - overlap) * min(Tc, Tm)`` where Tc/Tm are the
  compute and memory times of that CTA set against the SM's share of
  the machine;
* wave quantization — the kernel completes in ``ceil(waves)`` waves,
  which is what produces the integer-waves-per-SM local optima the
  paper observes in Figure 6b;
* a fixed launch overhead and one memory-latency ramp per kernel.

Only ratios of latencies are ever reported, mirroring the paper's
normalized plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from .kernel import KernelSpec, Program
from .specs import GPUSpec


@dataclass(frozen=True)
class KernelTimes:
    """The cost model's intermediate quantities for one kernel.

    ``kernel_latency`` reports only the scalar total; everything the
    bottleneck profiler needs to attribute that total to simulated
    engines — compute vs. DRAM time per wave, wave count, fixed
    overheads, which pipe the math ran on — is here.  The identity
    ``latency == launch_s + ramp_s + ceil(waves) * wave_time`` holds
    exactly (same operations, same order as ``kernel_latency``).
    """

    occupancy: "Occupancy"
    waves: float
    compute_time: float  # seconds the resident CTA set spends on math, per wave
    memory_time: float  # seconds the resident CTA set spends on DRAM, per wave
    wave_time: float  # critical-path seconds per wave (with overlap credit)
    launch_s: float
    ramp_s: float
    compute_engine: str  # "tensor_core" | "cuda_core"
    #: Per-wave busy seconds split across all three engines, for kernels
    #: priced from a :class:`~repro.gpusim.kernel.ScheduleProfile`
    #: (``None`` on the legacy overlap-heuristic path, where CUDA-core
    #: and tensor-core work are not distinguished).
    engine_times: Optional[Dict[str, float]] = None
    #: Per-wave critical-path seconds of the scheduled dependence chain
    #: (0.0 on the legacy path).
    cp_time: float = 0.0

    @property
    def latency(self) -> float:
        return self.launch_s + self.ramp_s + math.ceil(self.waves) * self.wave_time


@dataclass(frozen=True)
class Occupancy:
    """Resolved occupancy of a kernel on a device."""

    ctas_per_sm: int
    limited_by: str

    @property
    def feasible(self) -> bool:
        return self.ctas_per_sm >= 1


def occupancy(gpu: GPUSpec, kernel: KernelSpec) -> Occupancy:
    """CTAs resident per SM, with the limiting resource."""
    limits = {
        "smem": gpu.smem_per_sm // max(kernel.smem_bytes, 1),
        "threads": gpu.max_threads_per_sm // max(kernel.threads_per_cta, 1),
        "regs": gpu.regs_per_sm
        // max(kernel.regs_per_thread * kernel.threads_per_cta, 1),
        "ctas": gpu.max_ctas_per_sm,
    }
    resource, value = min(limits.items(), key=lambda item: item[1])
    return Occupancy(ctas_per_sm=int(value), limited_by=resource)


def waves_per_sm(gpu: GPUSpec, kernel: KernelSpec) -> float:
    """Fractional number of CTA waves needed to drain the grid."""
    occ = occupancy(gpu, kernel)
    if not occ.feasible:
        return math.inf
    return kernel.grid / (gpu.num_sms * occ.ctas_per_sm)


def kernel_times(gpu: GPUSpec, kernel: KernelSpec) -> KernelTimes:
    """The full time decomposition of one kernel on a device."""
    occ = occupancy(gpu, kernel)
    if not occ.feasible:
        raise ResourceError(
            f"kernel {kernel.name!r} does not fit on {gpu.name}: "
            f"{kernel.smem_bytes} B smem vs {gpu.smem_per_sm} B per SM"
        )
    waves = kernel.grid / (gpu.num_sms * occ.ctas_per_sm)

    flops_per_cta = kernel.flops / kernel.grid
    bytes_per_cta = kernel.total_bytes / kernel.grid

    peak = gpu.peak_flops(kernel.dtype, kernel.tensor_cores)
    sm_flops = peak * kernel.compute_efficiency / gpu.num_sms
    sm_bw = gpu.mem_bw * kernel.memory_efficiency / gpu.num_sms
    # An underutilized grid still draws more than its proportional share
    # of DRAM bandwidth (up to ~3x: one SM's LSU/MSHR limit), while
    # compute units belong to the CTA alone and get no such boost.
    if kernel.grid < gpu.num_sms * occ.ctas_per_sm:
        boost = min(3.0, gpu.num_sms * occ.ctas_per_sm / kernel.grid)
        sm_bw *= boost

    resident = occ.ctas_per_sm
    ramp = gpu.mem_latency_ns * 1e-9
    launch = gpu.launch_overhead_s * kernel.launch_factor

    sched = kernel.schedule
    if sched is not None:
        # -- schedule-aware accounting (tile-IR optimizer output) -----------
        # Each engine runs its assigned work in parallel with the others;
        # the wave is bound by the busiest engine or by the scheduled
        # dependence chain (whose per-engine work legs serialize), never
        # by the scalar overlap heuristic.
        tensor_rate = (
            gpu.peak_flops(kernel.dtype, True) * kernel.compute_efficiency
            / gpu.num_sms
        )
        cuda_rate = gpu.fp32_flops * kernel.compute_efficiency / gpu.num_sms
        # An underfilled grid leaves SMs with fewer CTAs than occupancy
        # allows; per-SM contention scales with what is actually resident.
        actual = min(resident, max(1, math.ceil(kernel.grid / gpu.num_sms)))
        t_tensor = sched.tensor_flops * actual / tensor_rate
        t_cuda = sched.cuda_flops * actual / cuda_rate
        t_dram = sched.dram_bytes * actual / sm_bw
        cp_time = actual * (
            sched.cp_tensor_flops / tensor_rate
            + sched.cp_cuda_flops / cuda_rate
            + sched.cp_dram_bytes / sm_bw
        )
        wave_time = max(t_tensor, t_cuda, t_dram, cp_time)
        return KernelTimes(
            occupancy=occ,
            waves=waves,
            compute_time=t_tensor + t_cuda,
            memory_time=t_dram,
            wave_time=wave_time,
            launch_s=launch,
            ramp_s=ramp,
            compute_engine="tensor_core" if t_tensor >= t_cuda else "cuda_core",
            engine_times={
                "tensor_core": t_tensor,
                "cuda_core": t_cuda,
                "dram": t_dram,
            },
            cp_time=cp_time,
        )

    compute_time = flops_per_cta * resident / sm_flops
    memory_time = bytes_per_cta * resident / sm_bw
    wave_time = max(compute_time, memory_time) + (1.0 - kernel.overlap) * min(
        compute_time, memory_time
    )
    return KernelTimes(
        occupancy=occ,
        waves=waves,
        compute_time=compute_time,
        memory_time=memory_time,
        wave_time=wave_time,
        launch_s=launch,
        ramp_s=ramp,
        compute_engine="tensor_core" if kernel.tensor_cores else "cuda_core",
    )


def kernel_latency(gpu: GPUSpec, kernel: KernelSpec) -> float:
    """Estimated execution latency of one kernel, in seconds."""
    return kernel_times(gpu, kernel).latency


class ResourceError(RuntimeError):
    """A kernel exceeds the device's per-SM resources."""


def program_latency(gpu: GPUSpec, program: Program) -> float:
    """Latency of a dependent kernel sequence (kernels serialize)."""
    return sum(kernel_latency(gpu, k) for k in program.kernels)


def speedup(gpu: GPUSpec, baseline: Program, candidate: Program) -> float:
    """baseline latency / candidate latency (>1 means candidate wins)."""
    return program_latency(gpu, baseline) / program_latency(gpu, candidate)


def breakdown(gpu: GPUSpec, program: Program) -> List[dict]:
    """Per-kernel diagnostic rows (for reports and debugging)."""
    rows = []
    for kernel in program.kernels:
        occ = occupancy(gpu, kernel)
        rows.append(
            {
                "kernel": kernel.name,
                "grid": kernel.grid,
                "ctas_per_sm": occ.ctas_per_sm,
                "limited_by": occ.limited_by,
                "waves": waves_per_sm(gpu, kernel),
                "bytes": kernel.total_bytes,
                "flops": kernel.flops,
                "latency": kernel_latency(gpu, kernel),
            }
        )
    return rows
