"""Fusion-level and incremental-mode latency models (§5.3, §5.4, Fig. 7).

These reproduce the two analysis experiments of the paper:

* **Figure 6a / Figure 7** — fusing a safe-softmax cascade at the four
  levels of the GPU reduction hierarchy (intra-thread, intra-warp,
  intra-block, inter-block).  Fusion at level k corrects L_k partial
  results (linear overhead in L_k) but the deeper independent subtree
  gives better memory/compute overlap; inter-block fusion needs no
  correction but a second kernel and no overlap.
* **Figure 6b** — incremental vs non-incremental computation across
  parallelism (waves per SM).  Non-incremental execution must cache a
  whole kv-segment of intermediates in shared memory, capping the
  feasible segment length; incremental execution pays a per-element
  correction but admits any segment length, unlocking the
  integer-waves-per-SM sweet spots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .specs import GPUSpec

#: Reduction-hierarchy geometry for the level model.
ELEMENTS_PER_THREAD = 4
WARP_SIZE = 32
THREADS_PER_BLOCK = 256

#: Names of the four fusion strategies of §5.3, by level k.
LEVEL_NAMES = {1: "intra-thread", 2: "intra-warp", 3: "intra-block", 4: "inter-block"}

#: Fraction of min(Tc, Tm) hidden by the independent subtrees at each
#: fusion level (§5.3's analysis: deeper subtree (3) = longer
#: computation paths = better latency hiding; inter-block has a strict
#: dependency and hides nothing).
LEVEL_OVERLAP = {1: 0.10, 2: 0.55, 3: 0.90, 4: 0.0}

#: Cost (flops) of one correction: a rescale is an exp plus several
#: multiply-adds and the extra register traffic of the store-previous /
#: correct / reduce template (Fig. 12a), in flop-equivalents.
CORRECTION_FLOPS = 80.0
BASE_FLOPS_PER_ELEMENT = 8.0
BYTES_PER_ELEMENT = 4.0  # fp32 inputs


def level_sizes(n: int) -> Dict[int, int]:
    """L_0..L_4 of the reduction tree for an n-element row (§4.3)."""
    l1 = max(n // ELEMENTS_PER_THREAD, 1)
    l2 = max(l1 // WARP_SIZE, 1)
    l3 = max(l1 // THREADS_PER_BLOCK, 1)
    return {0: n, 1: l1, 2: l2, 3: l3, 4: 1}


def memory_access_counts(n: int, fusion_level: Optional[int]) -> int:
    """Times the dependent result d_K is loaded while computing F_i.

    Figure 7: without fusion d_K is re-loaded L_0 times; fusing at
    level k reduces this to L_k accesses.
    """
    sizes = level_sizes(n)
    if fusion_level is None:
        return sizes[0]
    if fusion_level not in LEVEL_NAMES:
        raise ValueError(f"fusion level must be 1..4, got {fusion_level}")
    return sizes[fusion_level]


@dataclass(frozen=True)
class LevelLatency:
    """Latency of one fusion strategy on the safe-softmax microbench."""

    strategy: str
    latency: float
    corrections: int
    kernels: int


def softmax_fusion_level_latency(
    gpu: GPUSpec,
    n: int,
    rows: int = 4096,
    fusion_level: Optional[int] = None,
) -> LevelLatency:
    """Latency of safe softmax (max + sum-exp) fused at a given level.

    ``fusion_level=None`` models the unfused chain: two kernels, each
    re-reading the input row (the redundant-memory-access bottleneck of
    §1), with no cross-reduction overlap.
    """
    sizes = level_sizes(n)
    total_elements = float(rows) * n
    base_compute = total_elements * BASE_FLOPS_PER_ELEMENT
    read_bytes = total_elements * BYTES_PER_ELEMENT

    eff_bw = gpu.mem_bw * 0.80
    eff_flops = gpu.fp32_flops * 0.50
    ramp = gpu.mem_latency_ns * 1e-9

    if fusion_level is None:
        # Two dependent kernels; each re-reads the inputs.
        per_kernel_mem = read_bytes / eff_bw
        per_kernel_compute = 0.5 * base_compute / eff_flops
        kernel_time = max(per_kernel_mem, per_kernel_compute) + min(
            per_kernel_mem, per_kernel_compute
        )
        latency = 2 * (gpu.launch_overhead_s + ramp + kernel_time)
        return LevelLatency("unfused", latency, corrections=0, kernels=2)

    overlap = LEVEL_OVERLAP[fusion_level]
    corrections = rows * sizes[fusion_level] if fusion_level < 4 else 0
    compute = (base_compute + corrections * CORRECTION_FLOPS) / eff_flops
    memory = read_bytes / eff_bw
    kernel_time = max(memory, compute) + (1.0 - overlap) * min(memory, compute)
    kernels = 2 if fusion_level == 4 else 1
    latency = kernels * (gpu.launch_overhead_s + ramp) + kernel_time
    if fusion_level == 4:
        # Combine kernel reads one partial per CTA of the first kernel.
        combine_bytes = rows * sizes[3] * BYTES_PER_ELEMENT * 2
        latency += combine_bytes / eff_bw
    return LevelLatency(
        LEVEL_NAMES[fusion_level], latency, corrections=corrections, kernels=kernels
    )


# ---------------------------------------------------------------------------
# Figure 6b: incremental vs non-incremental across parallelism
# ---------------------------------------------------------------------------
#: BERT-base attention microbench geometry.  ROW_BLOCKS is the number of
#: independent (query-block, head, batch) tiles; it is chosen so the
#: paper's anchor holds: the longest segment that still fits on-chip for
#: non-incremental execution (112 kv elements) corresponds to ~3.5 waves
#: per SM on the A10.
KV_LEN = 512
ROW_BLOCKS = 54
NON_INCREMENTAL_MAX_SEGMENT = 112
INCREMENTAL_CORRECTION_FRACTION = 0.05


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of the Fig. 6b parallelism sweep."""

    segment_len: int
    waves_per_sm: float
    incremental_latency: float
    non_incremental_latency: Optional[float]  # None when infeasible


def _attention_cta_time(gpu: GPUSpec, segment_len: int, incremental: bool) -> float:
    """Time for one CTA to process a kv-segment of the given length."""
    head_dim = 64
    blk_q = 128
    bytes_per_kv = 2 * head_dim * 2.0  # one K row + one V row, fp16
    flops_per_kv = 4.0 * blk_q * head_dim  # two GEMMs: QK^T and PV
    memory = segment_len * bytes_per_kv / (gpu.mem_bw * 0.8 / gpu.num_sms)
    compute = segment_len * flops_per_kv / (
        gpu.peak_flops("fp16", True) * 0.6 / gpu.num_sms
    )
    time = max(memory, compute) + 0.2 * min(memory, compute)
    if incremental:
        # Eq. 15's per-iteration correction: a small constant fraction.
        time *= 1.0 + INCREMENTAL_CORRECTION_FRACTION
    return time


def incremental_sweep(
    gpu: GPUSpec,
    split_counts: Sequence[int] = tuple(range(1, 13)),
) -> List[SweepPoint]:
    """Latency of both computation modes across parallelism levels.

    The kv axis is split into 1..N segments per row block; more splits
    mean more CTAs (more waves per SM) but shorter segments.  The
    non-incremental mode is only feasible while the whole segment's
    intermediates fit in shared memory (segment_len <= 112 on A10 for
    the BERT-base tile); the incremental mode is always feasible, which
    is what unlocks the integer-wave configurations (the waves-per-SM=3
    peak of the paper).
    """
    points: List[SweepPoint] = []
    for splits in split_counts:
        segment_len = math.ceil(KV_LEN / splits)
        ctas = ROW_BLOCKS * splits
        waves = ctas / gpu.num_sms
        combine = gpu.launch_overhead_s if splits > 1 else 0.0

        def total(incremental: bool) -> float:
            cta_time = _attention_cta_time(gpu, segment_len, incremental)
            return (
                gpu.launch_overhead_s
                + math.ceil(waves) * cta_time
                + combine
                + splits * 2e-7  # partial-result reduction cost
            )

        non_incremental = (
            total(False) if segment_len <= NON_INCREMENTAL_MAX_SEGMENT else None
        )
        points.append(
            SweepPoint(
                segment_len=segment_len,
                waves_per_sm=waves,
                incremental_latency=total(True),
                non_incremental_latency=non_incremental,
            )
        )
    return points
