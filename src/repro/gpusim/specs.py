"""GPU hardware specifications for the analytical performance model.

Numbers are taken from public datasheets; where a figure is not public
(MI308X is an export-variant of MI300X with undisclosed cuts) the value
is a documented approximation.  The cost model only ever uses *ratios*
of these quantities, matching the paper's normalized-latency reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

KB = 1024
GB = 1e9
TFLOPS = 1e12


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one accelerator."""

    name: str
    num_sms: int
    smem_per_sm: int  # usable shared memory per SM, bytes
    max_threads_per_sm: int
    max_ctas_per_sm: int
    regs_per_sm: int
    clock_ghz: float
    mem_bw: float  # global memory bandwidth, bytes/s
    fp32_flops: float  # CUDA-core FP32 throughput, flop/s
    tensor_fp16_flops: float  # dense tensor-core FP16/BF16, flop/s
    tensor_fp8_flops: float  # dense tensor-core FP8, flop/s (0 if absent)
    mem_latency_ns: float
    launch_overhead_s: float  # per kernel launch

    def peak_flops(self, dtype: str, tensor_cores: bool) -> float:
        """Peak throughput for the given datatype/execution-unit choice."""
        if not tensor_cores:
            return self.fp32_flops
        if dtype == "fp8" and self.tensor_fp8_flops > 0:
            return self.tensor_fp8_flops
        return self.tensor_fp16_flops

    @property
    def has_fp8(self) -> bool:
        return self.tensor_fp8_flops > 0


A10 = GPUSpec(
    name="A10",
    num_sms=72,
    smem_per_sm=100 * KB,
    max_threads_per_sm=1536,
    max_ctas_per_sm=16,
    regs_per_sm=65536,
    clock_ghz=1.695,
    mem_bw=600 * GB,
    fp32_flops=31.2 * TFLOPS,
    tensor_fp16_flops=125 * TFLOPS,
    tensor_fp8_flops=0.0,
    mem_latency_ns=500.0,
    launch_overhead_s=4e-6,
)

A100 = GPUSpec(
    name="A100",
    num_sms=108,
    smem_per_sm=164 * KB,
    max_threads_per_sm=2048,
    max_ctas_per_sm=32,
    regs_per_sm=65536,
    clock_ghz=1.41,
    mem_bw=2039 * GB,
    fp32_flops=19.5 * TFLOPS,
    tensor_fp16_flops=312 * TFLOPS,
    tensor_fp8_flops=0.0,
    mem_latency_ns=470.0,
    launch_overhead_s=4e-6,
)

H800 = GPUSpec(
    name="H800",
    num_sms=132,
    smem_per_sm=228 * KB,
    max_threads_per_sm=2048,
    max_ctas_per_sm=32,
    regs_per_sm=65536,
    clock_ghz=1.755,
    mem_bw=3350 * GB,
    fp32_flops=67 * TFLOPS,
    tensor_fp16_flops=990 * TFLOPS,
    tensor_fp8_flops=1979 * TFLOPS,
    mem_latency_ns=450.0,
    launch_overhead_s=4e-6,
)

# MI308X: export variant of MI300X; compute is cut to roughly a quarter
# while the HBM subsystem is retained.  CU count/clock are approximate.
MI308X = GPUSpec(
    name="MI308X",
    num_sms=80,
    smem_per_sm=64 * KB,
    max_threads_per_sm=2048,
    max_ctas_per_sm=16,
    regs_per_sm=65536,
    clock_ghz=2.1,
    mem_bw=5300 * GB,
    fp32_flops=40.0 * TFLOPS,
    tensor_fp16_flops=320 * TFLOPS,
    tensor_fp8_flops=640 * TFLOPS,
    mem_latency_ns=600.0,
    launch_overhead_s=6e-6,
)

GPUS: Dict[str, GPUSpec] = {g.name: g for g in (A10, A100, H800, MI308X)}


def gpu(name: str) -> GPUSpec:
    """Look up a GPU spec by name (``"A10"``, ``"A100"``, ...)."""
    try:
        return GPUS[name]
    except KeyError:
        raise KeyError(f"unknown GPU {name!r}; known: {sorted(GPUS)}") from None
