"""Analytical GPU simulator: the hardware substrate for all benchmarks."""

from .costmodel import (
    KernelTimes,
    Occupancy,
    ResourceError,
    breakdown,
    kernel_latency,
    kernel_times,
    occupancy,
    program_latency,
    speedup,
    waves_per_sm,
)
from .kernel import KernelSpec, Program, ScheduleProfile
from .levels import (
    LEVEL_NAMES,
    LevelLatency,
    SweepPoint,
    incremental_sweep,
    level_sizes,
    memory_access_counts,
    softmax_fusion_level_latency,
)
from .specs import A10, A100, GPUS, H800, MI308X, GPUSpec, gpu

__all__ = [
    "KernelTimes",
    "Occupancy",
    "ResourceError",
    "breakdown",
    "kernel_latency",
    "kernel_times",
    "occupancy",
    "program_latency",
    "speedup",
    "waves_per_sm",
    "KernelSpec",
    "Program",
    "ScheduleProfile",
    "LEVEL_NAMES",
    "LevelLatency",
    "SweepPoint",
    "incremental_sweep",
    "level_sizes",
    "memory_access_counts",
    "softmax_fusion_level_latency",
    "A10",
    "A100",
    "GPUS",
    "H800",
    "MI308X",
    "GPUSpec",
    "gpu",
]
